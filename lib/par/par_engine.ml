open Tavcc_cc
module Engine = Tavcc_sim.Engine
module LT = Tavcc_lock.Lock_table
module Txn = Tavcc_txn.Txn
module History = Tavcc_txn.History
module Metrics = Tavcc_obs.Metrics
module Store = Tavcc_model.Store
module Schema = Tavcc_model.Schema

type config = {
  domains : int;
  shards : int;
  policy : Engine.deadlock_policy;
  max_restarts : int;
  max_steps : int;
  detector_period_us : int;
  restart_backoff_us : int;
  backoff_cap_us : int;
  record_history : bool;
  metrics : Metrics.t option;
  obs : Par_obs.t option;
  stall_sink : Shard_table.stall_report Tavcc_obs.Sink.t;
  probe :
    (dom:int ->
    txn:int ->
    holds:(Tavcc_lock.Resource.t -> (int * bool) list) ->
    Exec.probe)
    option;
}

let default_config =
  {
    domains = 4;
    shards = 8;
    policy = Engine.Detect;
    max_restarts = 1000;
    max_steps = 1_000_000;
    detector_period_us = 500;
    restart_backoff_us = 50;
    backoff_cap_us = 5000;
    record_history = false;
    metrics = None;
    obs = None;
    stall_sink = Tavcc_obs.Sink.null;
    probe = None;
  }

type result = {
  commits : int;
  aborts : int;
  deadlocks : int;
  wounds : int;
  died : int;
  timeouts : int;
  restarts : int;
  snapshot_commits : int;
  snapshot_aborts : int;
  occ_commits : int;
  occ_validation_failures : int;
  failed : (int * string) list;
  wall_seconds : float;
  throughput : float;
  lock_stats : LT.stats;
  history : History.t option;
}

let pp_result ppf r =
  Format.fprintf ppf
    "commits=%d aborts=%d deadlocks=%d wounds=%d died=%d timeouts=%d restarts=%d \
     snapshot=%d/%d occ=%d/%d failed=%d wall=%.3fs throughput=%.0f txn/s"
    r.commits r.aborts r.deadlocks r.wounds r.died r.timeouts r.restarts
    r.snapshot_commits r.snapshot_aborts r.occ_commits r.occ_validation_failures
    (List.length r.failed) r.wall_seconds r.throughput

let serializable r =
  match r.history with None -> true | Some h -> History.conflict_serializable h

type pmetrics = {
  pm_commits : Metrics.counter;
  pm_aborts : Metrics.counter;
  pm_deadlocks : Metrics.counter;
  pm_wounds : Metrics.counter;
  pm_died : Metrics.counter;
  pm_timeouts : Metrics.counter;
  pm_restarts : Metrics.counter;
  pm_txn_us : Metrics.histogram;
  pm_backoff_us : Metrics.histogram;
}

let run ?(config = default_config) ~scheme ~store ~jobs () =
  if config.domains <= 0 then invalid_arg "Par_engine.run: domains must be positive";
  List.iter
    (fun (id, _) ->
      if id <= 0 then invalid_arg "Par_engine.run: transaction ids must be positive")
    jobs;
  (* Touch every extent ref before spawning: [Store.extent] lazily
     creates the per-class ref cell, and that Hashtbl write must not race
     with concurrent extent scans. *)
  List.iter
    (fun c -> ignore (Store.extent store c))
    (Schema.classes (Store.schema store));
  let t0 = Unix.gettimeofday () in
  let clock () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  if Option.fold ~none:false ~some:(fun o -> Par_obs.domain_count o <> config.domains)
       config.obs
  then invalid_arg "Par_engine.run: obs was created for a different domain count";
  let oemit k = Option.iter (fun o -> Par_obs.emit o k) config.obs in
  let locks =
    Shard_table.create ~shards:config.shards ?metrics:config.metrics ~clock
      ?tracer:(Option.map Par_obs.tracer config.obs)
      ~conflict:scheme.Scheme.conflict ()
  in
  let pm =
    Option.map
      (fun m ->
        {
          pm_commits = Metrics.counter m "par.commits";
          pm_aborts = Metrics.counter m "par.aborts";
          pm_deadlocks = Metrics.counter m "par.deadlocks";
          pm_wounds = Metrics.counter m "par.wounds";
          pm_died = Metrics.counter m "par.died";
          pm_timeouts = Metrics.counter m "par.timeouts";
          pm_restarts = Metrics.counter m "par.restarts";
          pm_txn_us = Metrics.histogram m "par.txn_us";
          pm_backoff_us = Metrics.histogram m "par.backoff_us";
        })
      config.metrics
  in
  let tick f = match pm with None -> () | Some p -> f p in
  let commits = Atomic.make 0
  and aborts = Atomic.make 0
  and deadlocks = Atomic.make 0
  and wounds = Atomic.make 0
  and died = Atomic.make 0
  and timeouts = Atomic.make 0
  and restarts = Atomic.make 0
  and snapshot_commits = Atomic.make 0
  and snapshot_aborts = Atomic.make 0
  and occ_commits = Atomic.make 0
  and occ_vfails = Atomic.make 0 in
  let failed_mu = Mutex.create () in
  let failed = ref [] in
  let history = if config.record_history then Some (History.create ()) else None in
  let hist_mu = Mutex.create () in
  let record op =
    match history with
    | None -> ()
    | Some h ->
        Mutex.lock hist_mu;
        History.record h op;
        Mutex.unlock hist_mu
  in
  let wait_policy =
    match config.policy with
    | Engine.Detect | Engine.Timeout _ -> Shard_table.Block
    | Engine.Wound_wait -> Shard_table.Wound
    | Engine.Wait_die -> Shard_table.Die_if_older
    | Engine.No_wait -> Shard_table.Never_wait
  in
  (* --- detector domain: cycles always, timeouts when asked --- *)
  let stop = Atomic.make false in
  let timeout_s =
    match config.policy with Engine.Timeout n -> Some (float_of_int n /. 1000.) | _ -> None
  in
  let watchdog_s =
    match Sys.getenv_opt "TAVCC_PAR_WATCHDOG" with
    | Some v -> ( try float_of_string v with _ -> 3.)
    | None -> 0.
  in
  let detector () =
    Option.iter (fun o -> Par_obs.attach o ~dom:(Par_obs.detector_dom o)) config.obs;
    let period = float_of_int (max 50 config.detector_period_us) /. 1e6 in
    let last_progress = ref (0, Unix.gettimeofday ()) in
    while not (Atomic.get stop) do
      Unix.sleepf period;
      (* The detector doubles as the ring coordinator: it is the single
         consumer of the per-domain event rings while the run is live. *)
      Option.iter (fun o -> ignore (Par_obs.drain o)) config.obs;
      if watchdog_s > 0. then begin
        let p = Atomic.get commits + Atomic.get aborts + Atomic.get restarts in
        let lp, lt = !last_progress in
        if p <> lp then last_progress := (p, Unix.gettimeofday ())
        else if Unix.gettimeofday () -. lt > watchdog_s then begin
          let report =
            Shard_table.stall_report ~elapsed_s:(Unix.gettimeofday () -. lt) locks
          in
          (* Structured consumers take the report itself; without a sink
             the pretty-printed dump goes to stderr as before. *)
          if Tavcc_obs.Sink.is_null config.stall_sink then
            Format.eprintf "@[<v>=== par watchdog: no progress for %.1fs ===@,%a=== end ===@]@."
              report.Shard_table.sr_elapsed_s Shard_table.pp_stall_report report
          else Tavcc_obs.Sink.push config.stall_sink report;
          last_progress := (p, Unix.gettimeofday ())
        end
      end;
      (match timeout_s with
      | None -> ()
      | Some limit ->
          List.iter
            (fun (id, waited) ->
              if waited > limit && Shard_table.kill locks ~victim:id Shard_table.Timed_out
              then begin
                Atomic.incr timeouts;
                tick (fun p -> Metrics.incr p.pm_timeouts)
              end)
            (Shard_table.waiting_txns locks));
      (* Resolve every cycle visible in this sweep.  The victim is the
         youngest member (max birth, ties to max id), killed only if the
         kill actually lands — a member may have finished since the
         snapshot (phantom cycle), in which case the next sweep retries. *)
      let rec resolve edges =
        match Shard_table.find_cycle_edges edges with
        | None -> ()
        | Some cycle ->
            let victim =
              List.fold_left
                (fun best id ->
                  let b v = Option.value ~default:v (Shard_table.birth_of locks v) in
                  if b id > b best || (b id = b best && id > best) then id else best)
                (List.hd cycle) cycle
            in
            if Shard_table.kill locks ~victim Shard_table.Deadlock_victim then begin
              Atomic.incr deadlocks;
              tick (fun p -> Metrics.incr p.pm_deadlocks)
            end;
            (* Drop the victim's edges and look for further cycles. *)
            resolve (List.filter (fun (a, b) -> a <> victim && b <> victim) edges)
      in
      resolve (Shard_table.waits_for_edges locks)
    done
  in
  (* --- workers --- *)
  let jobs_arr = Array.of_list jobs in
  let cursor = Atomic.make 0 in
  (* Capped exponential backoff with deterministic jitter.  The old
     linear [attempt * base] kept every loser of a conflict on the same
     short cadence, so they re-collided and sustained the restart storm;
     doubling with a per-(txn, attempt) jitter spreads them out. *)
  let backoff ~id attempt =
    if config.restart_backoff_us > 0 && attempt > 0 then begin
      let base = config.restart_backoff_us in
      let cap = max base config.backoff_cap_us in
      let bounded = min cap (base * (1 lsl min 20 (attempt - 1))) in
      let rng = Tavcc_sim.Rng.create ((id * 1_000_003) + attempt) in
      let jitter = if bounded >= 2 then Tavcc_sim.Rng.int rng (bounded / 2) else 0 in
      let us = (bounded / 2) + jitter in
      tick (fun p -> Metrics.observe p.pm_backoff_us us);
      Unix.sleepf (float_of_int us /. 1e6)
    end
  in
  let run_job ~dom (id, actions) =
    let probe =
      Option.map
        (fun mk -> mk ~dom ~txn:id ~holds:(Shard_table.holds locks id))
        config.probe
    in
    let rec attempt n txn =
      Shard_table.register locks ~id ~birth:id;
      oemit (Par_obs.E_begin { txn = id; attempt = n });
      let began = Unix.gettimeofday () in
      let finish_and_release () =
        Shard_table.finish locks id;
        ignore (Shard_table.release_all locks id)
      in
      let session = ref None in
      let close_session_abort () =
        (match !session with
        | Some s ->
            if s.Scheme.ms_mode = Scheme.Mv_snapshot then Atomic.incr snapshot_aborts;
            s.Scheme.ms_abort ()
        | None -> ());
        session := None
      in
      let retry_or_fail () =
        if n >= config.max_restarts then begin
          Mutex.lock failed_mu;
          failed := (id, "exceeded max restarts") :: !failed;
          Mutex.unlock failed_mu
        end
        else begin
          Atomic.incr restarts;
          tick (fun p -> Metrics.incr p.pm_restarts);
          backoff ~id (n + 1);
          attempt (n + 1) (Txn.reset_for_restart txn)
        end
      in
      match
        record (History.Begin id);
        let ctx =
          {
            Scheme.txn;
            acquire = (fun r -> Shard_table.acquire_blocking locks ~policy:wait_policy r);
          }
        in
        let mv =
          Option.map
            (fun m ->
              m.Scheme.mv_begin ctx ~read:(Store.read store) ~class_of:(Store.class_of store)
                actions)
            scheme.Scheme.mvcc
        in
        session := mv;
        let versioned =
          match mv with
          | Some s -> s.Scheme.ms_mode <> Scheme.Mv_pessimistic
          | None -> false
        in
        let on_read oid f =
          (* versioned reads enter the history as [Snapshot_read]s below *)
          if not versioned then record (History.Read (id, oid, f))
        in
        let on_write oid f = record (History.Write (id, oid, f)) in
        Exec.begin_txn ~scheme ~store ~ctx actions;
        List.iter
          (fun a ->
            Exec.perform ~scheme ~store ~ctx ?mv ~on_read ~on_write ?probe
              ~max_steps:config.max_steps a)
          actions;
        match mv with
        | None -> ()
        | Some s ->
            (* A deadlock victim that got this far is allowed to commit
               (it releases its locks either way — see the mli); precommit
               may still abort on its own terms (deferred lock
               acquisition checks the kill flag, validation may fail);
               publish is the point of no return. *)
            let write oid f v =
              let before = Store.read store oid f in
              Txn.log_write txn oid f ~before;
              record (History.Write (id, oid, f));
              Store.write store oid f v
            in
            s.Scheme.ms_precommit ctx ~write;
            if versioned then begin
              record (History.Snapshot (id, s.Scheme.ms_snapshot));
              List.iter
                (fun (oid, f, vts) -> record (History.Snapshot_read (id, oid, f, vts)))
                (s.Scheme.ms_reads ())
            end;
            (match s.Scheme.ms_publish () with
            | Some ts -> record (History.Publish (id, ts))
            | None -> ())
      with
      | () ->
          (match !session with
          | Some s -> (
              match s.Scheme.ms_mode with
              | Scheme.Mv_snapshot -> Atomic.incr snapshot_commits
              | Scheme.Mv_optimistic -> Atomic.incr occ_commits
              | Scheme.Mv_pessimistic -> ())
          | None -> ());
          session := None;
          Txn.commit txn;
          record (History.Commit id);
          oemit (Par_obs.E_commit { txn = id; attempt = n });
          Atomic.incr commits;
          tick (fun p ->
              Metrics.incr p.pm_commits;
              Metrics.observe p.pm_txn_us
                (int_of_float ((Unix.gettimeofday () -. began) *. 1e6)));
          finish_and_release ()
      | exception Shard_table.Aborted reason ->
          close_session_abort ();
          oemit
            (Par_obs.E_abort
               { txn = id; attempt = n; reason = Shard_table.reason_name reason });
          (match reason with
          | Shard_table.Wounded _ ->
              Atomic.incr wounds;
              tick (fun p -> Metrics.incr p.pm_wounds)
          | Shard_table.Died ->
              Atomic.incr died;
              tick (fun p -> Metrics.incr p.pm_died)
          | Shard_table.Deadlock_victim | Shard_table.Timed_out -> ());
          Atomic.incr aborts;
          tick (fun p -> Metrics.incr p.pm_aborts);
          record (History.Abort id);
          (* Undo while the locks are still held (strict 2PL), then
             release and wake whoever was queued behind us. *)
          Txn.abort store txn;
          finish_and_release ();
          retry_or_fail ()
      | exception Scheme.Validation_failed ->
          (* optimistic commit lost its validation race: same shape as a
             deadlock abort — undo, release, restart with backoff *)
          close_session_abort ();
          oemit (Par_obs.E_abort { txn = id; attempt = n; reason = "validation" });
          Atomic.incr occ_vfails;
          Atomic.incr aborts;
          tick (fun p -> Metrics.incr p.pm_aborts);
          record (History.Abort id);
          Txn.abort store txn;
          finish_and_release ();
          retry_or_fail ()
      | exception e ->
          close_session_abort ();
          oemit (Par_obs.E_abort { txn = id; attempt = n; reason = "failed" });
          record (History.Abort id);
          Txn.abort store txn;
          finish_and_release ();
          Mutex.lock failed_mu;
          failed := (id, Printexc.to_string e) :: !failed;
          Mutex.unlock failed_mu
    in
    attempt 0 (Txn.make ~id ~birth:id)
  in
  let worker dom () =
    Option.iter (fun o -> Par_obs.attach o ~dom) config.obs;
    (* Per-domain busy time: what [oosim top] turns into utilisation. *)
    let busy =
      Option.map
        (fun m -> Metrics.counter m (Printf.sprintf "par.dom%d.busy_us" dom))
        config.metrics
    in
    let rec pull () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < Array.length jobs_arr then begin
        let j0 = Unix.gettimeofday () in
        run_job ~dom jobs_arr.(i);
        Option.iter
          (fun c -> Metrics.add c (int_of_float ((Unix.gettimeofday () -. j0) *. 1e6)))
          busy;
        pull ()
      end
    in
    pull ()
  in
  Option.iter (fun m -> m.Scheme.mv_run_begin ()) scheme.Scheme.mvcc;
  let det = Domain.spawn detector in
  let workers = List.init config.domains (fun dom -> Domain.spawn (worker dom)) in
  List.iter Domain.join workers;
  Atomic.set stop true;
  Domain.join det;
  (* The joins make every ring quiescent and published; the final drain
     (consumer role handed from the detector to this domain) picks up
     whatever the last sweep missed. *)
  Option.iter (fun o -> ignore (Par_obs.drain o)) config.obs;
  let wall = Unix.gettimeofday () -. t0 in
  let c = Atomic.get commits in
  {
    commits = c;
    aborts = Atomic.get aborts;
    deadlocks = Atomic.get deadlocks;
    wounds = Atomic.get wounds;
    died = Atomic.get died;
    timeouts = Atomic.get timeouts;
    restarts = Atomic.get restarts;
    snapshot_commits = Atomic.get snapshot_commits;
    snapshot_aborts = Atomic.get snapshot_aborts;
    occ_commits = Atomic.get occ_commits;
    occ_validation_failures = Atomic.get occ_vfails;
    failed = !failed;
    wall_seconds = wall;
    throughput = (if wall > 0. then float_of_int c /. wall else 0.);
    lock_stats = Shard_table.stats locks;
    history;
  }
