open Tavcc_cc
module Engine = Tavcc_sim.Engine
module LT = Tavcc_lock.Lock_table
module Txn = Tavcc_txn.Txn
module History = Tavcc_txn.History
module Metrics = Tavcc_obs.Metrics
module Store = Tavcc_model.Store
module Schema = Tavcc_model.Schema

type config = {
  domains : int;
  shards : int;
  policy : Engine.deadlock_policy;
  max_restarts : int;
  max_steps : int;
  detector_period_us : int;
  restart_backoff_us : int;
  backoff_cap_us : int;
  record_history : bool;
  metrics : Metrics.t option;
  obs : Par_obs.t option;
  stall_sink : Shard_table.stall_report Tavcc_obs.Sink.t;
  probe :
    (dom:int ->
    txn:int ->
    holds:(Tavcc_lock.Resource.t -> (int * bool) list) ->
    Exec.probe)
    option;
  journal : journal option;
}

and journal = {
  j_begin : int -> unit;
  j_commit : int -> unit;
  j_abort : int -> unit;
}

let default_config =
  {
    domains = 4;
    shards = 8;
    policy = Engine.Detect;
    max_restarts = 1000;
    max_steps = 1_000_000;
    detector_period_us = 500;
    restart_backoff_us = 50;
    backoff_cap_us = 5000;
    record_history = false;
    metrics = None;
    obs = None;
    stall_sink = Tavcc_obs.Sink.null;
    probe = None;
    journal = None;
  }

type result = {
  commits : int;
  aborts : int;
  deadlocks : int;
  wounds : int;
  died : int;
  timeouts : int;
  restarts : int;
  snapshot_commits : int;
  snapshot_aborts : int;
  occ_commits : int;
  occ_validation_failures : int;
  failed : (int * string) list;
  wall_seconds : float;
  throughput : float;
  lock_stats : LT.stats;
  history : History.t option;
}

let pp_result ppf r =
  Format.fprintf ppf
    "commits=%d aborts=%d deadlocks=%d wounds=%d died=%d timeouts=%d restarts=%d \
     snapshot=%d/%d occ=%d/%d failed=%d wall=%.3fs throughput=%.0f txn/s"
    r.commits r.aborts r.deadlocks r.wounds r.died r.timeouts r.restarts
    r.snapshot_commits r.snapshot_aborts r.occ_commits r.occ_validation_failures
    (List.length r.failed) r.wall_seconds r.throughput

let serializable r =
  match r.history with None -> true | Some h -> History.conflict_serializable h

type pmetrics = {
  pm_commits : Metrics.counter;
  pm_aborts : Metrics.counter;
  pm_deadlocks : Metrics.counter;
  pm_wounds : Metrics.counter;
  pm_died : Metrics.counter;
  pm_timeouts : Metrics.counter;
  pm_restarts : Metrics.counter;
  pm_txn_us : Metrics.histogram;
  pm_backoff_us : Metrics.histogram;
}

type job_status = Job_committed of { restarts : int } | Job_failed of string

(* --- the engine core -------------------------------------------------

   Everything [run] used to build inline — the sharded lock table, the
   shared counters, the detector domain, the per-job strict-2PL restart
   loop — lives in a [core] now, so the batch driver ([run]) and the
   long-lived submission service ([service_start]/[submit]) execute jobs
   through literally the same code path. *)

type counters = {
  n_commits : int Atomic.t;
  n_aborts : int Atomic.t;
  n_deadlocks : int Atomic.t;
  n_wounds : int Atomic.t;
  n_died : int Atomic.t;
  n_timeouts : int Atomic.t;
  n_restarts : int Atomic.t;
  n_snapshot_commits : int Atomic.t;
  n_snapshot_aborts : int Atomic.t;
  n_occ_commits : int Atomic.t;
  n_occ_vfails : int Atomic.t;
}

type core = {
  k_config : config;
  k_scheme : Scheme.t;
  k_store : Tavcc_lang.Ast.body Store.t;
  k_locks : Shard_table.t;
  k_pm : pmetrics option;
  k_n : counters;
  k_wait_policy : Shard_table.wait_policy;
  k_failed_mu : Mutex.t;
  mutable k_failed : (int * string) list;
  k_history : History.t option;
  k_hist_mu : Mutex.t;
  k_stop : bool Atomic.t;
  k_t0 : float;
  mutable k_detector : unit Domain.t option;
}

let tick c f = match c.k_pm with None -> () | Some p -> f p
let oemit c k = Option.iter (fun o -> Par_obs.emit o k) c.k_config.obs

let record c op =
  match c.k_history with
  | None -> ()
  | Some h ->
      Mutex.lock c.k_hist_mu;
      History.record h op;
      Mutex.unlock c.k_hist_mu

let add_failed c id msg =
  Mutex.lock c.k_failed_mu;
  c.k_failed <- (id, msg) :: c.k_failed;
  Mutex.unlock c.k_failed_mu

(* --- detector domain: cycles always, timeouts when asked --- *)

let detector c () =
  let config = c.k_config in
  Option.iter (fun o -> Par_obs.attach o ~dom:(Par_obs.detector_dom o)) config.obs;
  let period = float_of_int (max 50 config.detector_period_us) /. 1e6 in
  let timeout_s =
    match config.policy with Engine.Timeout n -> Some (float_of_int n /. 1000.) | _ -> None
  in
  let watchdog_s =
    match Sys.getenv_opt "TAVCC_PAR_WATCHDOG" with
    | Some v -> ( try float_of_string v with _ -> 3.)
    | None -> 0.
  in
  let last_progress = ref (0, Unix.gettimeofday ()) in
  while not (Atomic.get c.k_stop) do
    Unix.sleepf period;
    (* The detector doubles as the ring coordinator: it is the single
       consumer of the per-domain event rings while the run is live. *)
    Option.iter (fun o -> ignore (Par_obs.drain o)) config.obs;
    if watchdog_s > 0. then begin
      let p =
        Atomic.get c.k_n.n_commits + Atomic.get c.k_n.n_aborts
        + Atomic.get c.k_n.n_restarts
      in
      let lp, lt = !last_progress in
      if p <> lp then last_progress := (p, Unix.gettimeofday ())
      else if Unix.gettimeofday () -. lt > watchdog_s then begin
        let report =
          Shard_table.stall_report ~elapsed_s:(Unix.gettimeofday () -. lt) c.k_locks
        in
        (* Structured consumers take the report itself; without a sink
           the pretty-printed dump goes to stderr as before. *)
        if Tavcc_obs.Sink.is_null config.stall_sink then
          Format.eprintf "@[<v>=== par watchdog: no progress for %.1fs ===@,%a=== end ===@]@."
            report.Shard_table.sr_elapsed_s Shard_table.pp_stall_report report
        else Tavcc_obs.Sink.push config.stall_sink report;
        last_progress := (p, Unix.gettimeofday ())
      end
    end;
    (match timeout_s with
    | None -> ()
    | Some limit ->
        List.iter
          (fun (id, waited) ->
            if waited > limit && Shard_table.kill c.k_locks ~victim:id Shard_table.Timed_out
            then begin
              Atomic.incr c.k_n.n_timeouts;
              tick c (fun p -> Metrics.incr p.pm_timeouts)
            end)
          (Shard_table.waiting_txns c.k_locks));
    (* Resolve every cycle visible in this sweep.  The victim is the
       youngest member (max birth, ties to max id), killed only if the
       kill actually lands — a member may have finished since the
       snapshot (phantom cycle), in which case the next sweep retries. *)
    let rec resolve edges =
      match Shard_table.find_cycle_edges edges with
      | None -> ()
      | Some cycle ->
          let victim =
            List.fold_left
              (fun best id ->
                let b v = Option.value ~default:v (Shard_table.birth_of c.k_locks v) in
                if b id > b best || (b id = b best && id > best) then id else best)
              (List.hd cycle) cycle
          in
          if Shard_table.kill c.k_locks ~victim Shard_table.Deadlock_victim then begin
            Atomic.incr c.k_n.n_deadlocks;
            tick c (fun p -> Metrics.incr p.pm_deadlocks)
          end;
          (* Drop the victim's edges and look for further cycles. *)
          resolve (List.filter (fun (a, b) -> a <> victim && b <> victim) edges)
    in
    resolve (Shard_table.waits_for_edges c.k_locks)
  done

let make_core ~config ~scheme ~store () =
  if config.domains <= 0 then invalid_arg "Par_engine: domains must be positive";
  if Option.fold ~none:false ~some:(fun o -> Par_obs.domain_count o <> config.domains)
       config.obs
  then invalid_arg "Par_engine: obs was created for a different domain count";
  (* Touch every extent ref before spawning: [Store.extent] lazily
     creates the per-class ref cell, and that Hashtbl write must not race
     with concurrent extent scans. *)
  List.iter
    (fun cl -> ignore (Store.extent store cl))
    (Schema.classes (Store.schema store));
  let t0 = Unix.gettimeofday () in
  let clock () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  let locks =
    Shard_table.create ~shards:config.shards ?metrics:config.metrics ~clock
      ?tracer:(Option.map Par_obs.tracer config.obs)
      ~conflict:scheme.Scheme.conflict ()
  in
  let pm =
    Option.map
      (fun m ->
        {
          pm_commits = Metrics.counter m "par.commits";
          pm_aborts = Metrics.counter m "par.aborts";
          pm_deadlocks = Metrics.counter m "par.deadlocks";
          pm_wounds = Metrics.counter m "par.wounds";
          pm_died = Metrics.counter m "par.died";
          pm_timeouts = Metrics.counter m "par.timeouts";
          pm_restarts = Metrics.counter m "par.restarts";
          pm_txn_us = Metrics.histogram m "par.txn_us";
          pm_backoff_us = Metrics.histogram m "par.backoff_us";
        })
      config.metrics
  in
  let counters =
    {
      n_commits = Atomic.make 0;
      n_aborts = Atomic.make 0;
      n_deadlocks = Atomic.make 0;
      n_wounds = Atomic.make 0;
      n_died = Atomic.make 0;
      n_timeouts = Atomic.make 0;
      n_restarts = Atomic.make 0;
      n_snapshot_commits = Atomic.make 0;
      n_snapshot_aborts = Atomic.make 0;
      n_occ_commits = Atomic.make 0;
      n_occ_vfails = Atomic.make 0;
    }
  in
  let wait_policy =
    match config.policy with
    | Engine.Detect | Engine.Timeout _ -> Shard_table.Block
    | Engine.Wound_wait -> Shard_table.Wound
    | Engine.Wait_die -> Shard_table.Die_if_older
    | Engine.No_wait -> Shard_table.Never_wait
  in
  let c =
    {
      k_config = config;
      k_scheme = scheme;
      k_store = store;
      k_locks = locks;
      k_pm = pm;
      k_n = counters;
      k_wait_policy = wait_policy;
      k_failed_mu = Mutex.create ();
      k_failed = [];
      k_history = (if config.record_history then Some (History.create ()) else None);
      k_hist_mu = Mutex.create ();
      k_stop = Atomic.make false;
      k_t0 = t0;
      k_detector = None;
    }
  in
  Option.iter (fun m -> m.Scheme.mv_run_begin ()) scheme.Scheme.mvcc;
  c.k_detector <- Some (Domain.spawn (detector c));
  c

(* Capped exponential backoff with deterministic jitter.  The old
   linear [attempt * base] kept every loser of a conflict on the same
   short cadence, so they re-collided and sustained the restart storm;
   doubling with a per-(txn, attempt) jitter spreads them out. *)
let backoff c ~id attempt =
  let config = c.k_config in
  if config.restart_backoff_us > 0 && attempt > 0 then begin
    let base = config.restart_backoff_us in
    let cap = max base config.backoff_cap_us in
    let bounded = min cap (base * (1 lsl min 20 (attempt - 1))) in
    let rng = Tavcc_sim.Rng.create ((id * 1_000_003) + attempt) in
    let jitter = if bounded >= 2 then Tavcc_sim.Rng.int rng (bounded / 2) else 0 in
    let us = (bounded / 2) + jitter in
    tick c (fun p -> Metrics.observe p.pm_backoff_us us);
    Unix.sleepf (float_of_int us /. 1e6)
  end

let run_job c ~dom (id, actions) =
  let config = c.k_config in
  let scheme = c.k_scheme in
  let store = c.k_store in
  let locks = c.k_locks in
  let probe =
    Option.map
      (fun mk -> mk ~dom ~txn:id ~holds:(Shard_table.holds locks id))
      config.probe
  in
  let jn f = match config.journal with Some j -> f j | None -> () in
  let rec attempt n txn : job_status =
    Shard_table.register locks ~id ~birth:id;
    oemit c (Par_obs.E_begin { txn = id; attempt = n });
    jn (fun j -> j.j_begin id);
    let began = Unix.gettimeofday () in
    let finish_and_release () =
      Shard_table.finish locks id;
      ignore (Shard_table.release_all locks id)
    in
    let session = ref None in
    let close_session_abort () =
      (match !session with
      | Some s ->
          if s.Scheme.ms_mode = Scheme.Mv_snapshot then Atomic.incr c.k_n.n_snapshot_aborts;
          s.Scheme.ms_abort ()
      | None -> ());
      session := None
    in
    let retry_or_fail () : job_status =
      if n >= config.max_restarts then begin
        add_failed c id "exceeded max restarts";
        Job_failed "exceeded max restarts"
      end
      else begin
        Atomic.incr c.k_n.n_restarts;
        tick c (fun p -> Metrics.incr p.pm_restarts);
        backoff c ~id (n + 1);
        attempt (n + 1) (Txn.reset_for_restart txn)
      end
    in
    match
      record c (History.Begin id);
      let ctx =
        {
          Scheme.txn;
          acquire = (fun r -> Shard_table.acquire_blocking locks ~policy:c.k_wait_policy r);
        }
      in
      let mv =
        Option.map
          (fun m ->
            m.Scheme.mv_begin ctx ~read:(Store.read store) ~class_of:(Store.class_of store)
              actions)
          scheme.Scheme.mvcc
      in
      session := mv;
      let versioned =
        match mv with
        | Some s -> s.Scheme.ms_mode <> Scheme.Mv_pessimistic
        | None -> false
      in
      let on_read oid f =
        (* versioned reads enter the history as [Snapshot_read]s below *)
        if not versioned then record c (History.Read (id, oid, f))
      in
      let on_write oid f = record c (History.Write (id, oid, f)) in
      Exec.begin_txn ~scheme ~store ~ctx actions;
      List.iter
        (fun a ->
          Exec.perform ~scheme ~store ~ctx ?mv ~on_read ~on_write ?probe
            ~max_steps:config.max_steps a)
        actions;
      match mv with
      | None -> ()
      | Some s ->
          (* A deadlock victim that got this far is allowed to commit
             (it releases its locks either way — see the mli); precommit
             may still abort on its own terms (deferred lock
             acquisition checks the kill flag, validation may fail);
             publish is the point of no return. *)
          let write oid f v =
            let before = Store.read store oid f in
            Txn.log_write txn oid f ~before;
            record c (History.Write (id, oid, f));
            Store.write store oid f v
          in
          s.Scheme.ms_precommit ctx ~write;
          if versioned then begin
            record c (History.Snapshot (id, s.Scheme.ms_snapshot));
            List.iter
              (fun (oid, f, vts) -> record c (History.Snapshot_read (id, oid, f, vts)))
              (s.Scheme.ms_reads ())
          end;
          (match s.Scheme.ms_publish () with
          | Some ts -> record c (History.Publish (id, ts))
          | None -> ())
    with
    | () ->
        (match !session with
        | Some s -> (
            match s.Scheme.ms_mode with
            | Scheme.Mv_snapshot -> Atomic.incr c.k_n.n_snapshot_commits
            | Scheme.Mv_optimistic -> Atomic.incr c.k_n.n_occ_commits
            | Scheme.Mv_pessimistic -> ())
        | None -> ());
        session := None;
        Txn.commit txn;
        (* Force the WAL while the locks are still held: a journalled
           commit is durable before anyone can read its effects. *)
        jn (fun j -> j.j_commit id);
        record c (History.Commit id);
        oemit c (Par_obs.E_commit { txn = id; attempt = n });
        Atomic.incr c.k_n.n_commits;
        tick c (fun p ->
            Metrics.incr p.pm_commits;
            Metrics.observe p.pm_txn_us
              (int_of_float ((Unix.gettimeofday () -. began) *. 1e6)));
        finish_and_release ();
        Job_committed { restarts = n }
    | exception Shard_table.Aborted reason ->
        close_session_abort ();
        oemit c
          (Par_obs.E_abort
             { txn = id; attempt = n; reason = Shard_table.reason_name reason });
        (match reason with
        | Shard_table.Wounded _ ->
            Atomic.incr c.k_n.n_wounds;
            tick c (fun p -> Metrics.incr p.pm_wounds)
        | Shard_table.Died ->
            Atomic.incr c.k_n.n_died;
            tick c (fun p -> Metrics.incr p.pm_died)
        | Shard_table.Deadlock_victim | Shard_table.Timed_out -> ());
        Atomic.incr c.k_n.n_aborts;
        tick c (fun p -> Metrics.incr p.pm_aborts);
        record c (History.Abort id);
        (* Undo while the locks are still held (strict 2PL), then
           release and wake whoever was queued behind us. *)
        Txn.abort store txn;
        jn (fun j -> j.j_abort id);
        finish_and_release ();
        retry_or_fail ()
    | exception Scheme.Validation_failed ->
        (* optimistic commit lost its validation race: same shape as a
           deadlock abort — undo, release, restart with backoff *)
        close_session_abort ();
        oemit c (Par_obs.E_abort { txn = id; attempt = n; reason = "validation" });
        Atomic.incr c.k_n.n_occ_vfails;
        Atomic.incr c.k_n.n_aborts;
        tick c (fun p -> Metrics.incr p.pm_aborts);
        record c (History.Abort id);
        Txn.abort store txn;
        jn (fun j -> j.j_abort id);
        finish_and_release ();
        retry_or_fail ()
    | exception e ->
        close_session_abort ();
        oemit c (Par_obs.E_abort { txn = id; attempt = n; reason = "failed" });
        record c (History.Abort id);
        Txn.abort store txn;
        jn (fun j -> j.j_abort id);
        finish_and_release ();
        let msg = Printexc.to_string e in
        add_failed c id msg;
        Job_failed msg
  in
  attempt 0 (Txn.make ~id ~birth:id)

(* Per-domain busy time: what [oosim top] turns into utilisation. *)
let busy_counter c dom =
  Option.map
    (fun m -> Metrics.counter m (Printf.sprintf "par.dom%d.busy_us" dom))
    c.k_config.metrics

let core_finish c =
  Atomic.set c.k_stop true;
  Option.iter Domain.join c.k_detector;
  c.k_detector <- None;
  (* The joins make every ring quiescent and published; the final drain
     (consumer role handed from the detector to this domain) picks up
     whatever the last sweep missed. *)
  Option.iter (fun o -> ignore (Par_obs.drain o)) c.k_config.obs;
  let wall = Unix.gettimeofday () -. c.k_t0 in
  let commits = Atomic.get c.k_n.n_commits in
  {
    commits;
    aborts = Atomic.get c.k_n.n_aborts;
    deadlocks = Atomic.get c.k_n.n_deadlocks;
    wounds = Atomic.get c.k_n.n_wounds;
    died = Atomic.get c.k_n.n_died;
    timeouts = Atomic.get c.k_n.n_timeouts;
    restarts = Atomic.get c.k_n.n_restarts;
    snapshot_commits = Atomic.get c.k_n.n_snapshot_commits;
    snapshot_aborts = Atomic.get c.k_n.n_snapshot_aborts;
    occ_commits = Atomic.get c.k_n.n_occ_commits;
    occ_validation_failures = Atomic.get c.k_n.n_occ_vfails;
    failed = c.k_failed;
    wall_seconds = wall;
    throughput = (if wall > 0. then float_of_int commits /. wall else 0.);
    lock_stats = Shard_table.stats c.k_locks;
    history = c.k_history;
  }

(* --- batch driver ----------------------------------------------------- *)

let run ?(config = default_config) ~scheme ~store ~jobs () =
  List.iter
    (fun (id, _) ->
      if id <= 0 then invalid_arg "Par_engine.run: transaction ids must be positive")
    jobs;
  let c = make_core ~config ~scheme ~store () in
  let jobs_arr = Array.of_list jobs in
  let cursor = Atomic.make 0 in
  let worker dom () =
    Option.iter (fun o -> Par_obs.attach o ~dom) config.obs;
    let busy = busy_counter c dom in
    let rec pull () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < Array.length jobs_arr then begin
        let j0 = Unix.gettimeofday () in
        ignore (run_job c ~dom jobs_arr.(i));
        Option.iter
          (fun cnt -> Metrics.add cnt (int_of_float ((Unix.gettimeofday () -. j0) *. 1e6)))
          busy;
        pull ()
      end
    in
    pull ()
  in
  let workers = List.init config.domains (fun dom -> Domain.spawn (worker dom)) in
  List.iter Domain.join workers;
  core_finish c

(* --- submission service ----------------------------------------------

   The same core behind a bounded job queue: an external driver (the
   network server front-end) feeds transactions in as they arrive and the
   worker domains drain them.  The queue bound is the admission-control
   point — a full queue rejects instead of buffering without limit. *)

type submit_outcome = Accepted | Saturated | Closed

type service = {
  s_core : core;
  s_mu : Mutex.t;
  s_nonempty : Condition.t;
  s_idle : Condition.t;
  s_q : (int * Exec.action list * (job_status -> unit)) Queue.t;
  s_cap : int;
  mutable s_closed : bool;
  mutable s_in_flight : int;  (** queued + running jobs + open interactive txns *)
  s_next_id : int Atomic.t;
  mutable s_workers : unit Domain.t list;
}

let service_worker s dom () =
  let c = s.s_core in
  Option.iter (fun o -> Par_obs.attach o ~dom) c.k_config.obs;
  let busy = busy_counter c dom in
  let rec loop () =
    Mutex.lock s.s_mu;
    while Queue.is_empty s.s_q && not s.s_closed do
      Condition.wait s.s_nonempty s.s_mu
    done;
    if Queue.is_empty s.s_q then Mutex.unlock s.s_mu (* closed and drained *)
    else begin
      let id, actions, k = Queue.pop s.s_q in
      Mutex.unlock s.s_mu;
      let j0 = Unix.gettimeofday () in
      let st = run_job c ~dom (id, actions) in
      Option.iter
        (fun cnt -> Metrics.add cnt (int_of_float ((Unix.gettimeofday () -. j0) *. 1e6)))
        busy;
      (* A throwing completion callback must not take the worker down. *)
      (try k st with _ -> ());
      Mutex.lock s.s_mu;
      s.s_in_flight <- s.s_in_flight - 1;
      if s.s_in_flight = 0 then Condition.broadcast s.s_idle;
      Mutex.unlock s.s_mu;
      loop ()
    end
  in
  loop ()

let service_start ?(config = default_config) ?(queue_capacity = 256) ~scheme ~store () =
  if queue_capacity <= 0 then
    invalid_arg "Par_engine.service_start: queue_capacity must be positive";
  let c = make_core ~config ~scheme ~store () in
  let s =
    {
      s_core = c;
      s_mu = Mutex.create ();
      s_nonempty = Condition.create ();
      s_idle = Condition.create ();
      s_q = Queue.create ();
      s_cap = queue_capacity;
      s_closed = false;
      s_in_flight = 0;
      s_next_id = Atomic.make 1;
      s_workers = [];
    }
  in
  (* assign in place: a [{ s with ... }] copy here would leave the workers
     holding a different record, splitting the mutable close/in-flight state *)
  s.s_workers <- List.init config.domains (fun d -> Domain.spawn (service_worker s d));
  s

let submit s ~actions ~k =
  Mutex.lock s.s_mu;
  if s.s_closed then begin
    Mutex.unlock s.s_mu;
    Closed
  end
  else if Queue.length s.s_q >= s.s_cap then begin
    Mutex.unlock s.s_mu;
    Saturated
  end
  else begin
    let id = Atomic.fetch_and_add s.s_next_id 1 in
    Queue.push (id, actions, k) s.s_q;
    s.s_in_flight <- s.s_in_flight + 1;
    Condition.signal s.s_nonempty;
    Mutex.unlock s.s_mu;
    Accepted
  end

let service_backlog s =
  Mutex.lock s.s_mu;
  let n = Queue.length s.s_q in
  Mutex.unlock s.s_mu;
  n

let service_in_flight s =
  Mutex.lock s.s_mu;
  let n = s.s_in_flight in
  Mutex.unlock s.s_mu;
  n

let service_drain s =
  Mutex.lock s.s_mu;
  while s.s_in_flight > 0 do
    Condition.wait s.s_idle s.s_mu
  done;
  Mutex.unlock s.s_mu

let service_waiting s = Shard_table.waiting_txns s.s_core.k_locks

let service_stop s =
  Mutex.lock s.s_mu;
  s.s_closed <- true;
  Condition.broadcast s.s_nonempty;
  Mutex.unlock s.s_mu;
  List.iter Domain.join s.s_workers;
  core_finish s.s_core

(* --- interactive transactions ----------------------------------------

   A session-owned transaction driven one statement at a time on the
   caller's own thread, against the same shard table the worker domains
   use.  Only schemes whose per-access hooks actually lock can run
   interactively: a preclaiming scheme sees no action list up front and
   would execute unlocked, and a multi-version scheme needs the whole
   list to classify the transaction. *)

let interactive_supported (scheme : Scheme.t) =
  Option.is_none scheme.Scheme.mvcc && scheme.Scheme.name <> "tav-pre"

type itxn = {
  it_service : service;
  it_id : int;
  it_txn : Txn.t;
  it_ctx : Scheme.ctx;
  mutable it_open : bool;
}

let itxn_id it = it.it_id

let itxn_close it =
  it.it_open <- false;
  let s = it.it_service in
  Mutex.lock s.s_mu;
  s.s_in_flight <- s.s_in_flight - 1;
  if s.s_in_flight = 0 then Condition.broadcast s.s_idle;
  Mutex.unlock s.s_mu

(* Abort path shared by kill/runtime-error/rollback: undo under the held
   locks, then release and wake the queue — exactly [run_job]'s order. *)
let itxn_abort_internal it reason_metrics =
  let c = it.it_service.s_core in
  (match reason_metrics with
  | Some (Shard_table.Wounded _) ->
      Atomic.incr c.k_n.n_wounds;
      tick c (fun p -> Metrics.incr p.pm_wounds)
  | Some Shard_table.Died ->
      Atomic.incr c.k_n.n_died;
      tick c (fun p -> Metrics.incr p.pm_died)
  | Some (Shard_table.Deadlock_victim | Shard_table.Timed_out) | None -> ());
  Atomic.incr c.k_n.n_aborts;
  tick c (fun p -> Metrics.incr p.pm_aborts);
  record c (History.Abort it.it_id);
  oemit c (Par_obs.E_abort { txn = it.it_id; attempt = 0; reason = "interactive" });
  Txn.abort c.k_store it.it_txn;
  (match c.k_config.journal with Some j -> j.j_abort it.it_id | None -> ());
  Shard_table.finish c.k_locks it.it_id;
  ignore (Shard_table.release_all c.k_locks it.it_id);
  itxn_close it

let itxn_begin s =
  let c = s.s_core in
  if not (interactive_supported c.k_scheme) then
    Error
      (Printf.sprintf "scheme %s does not support interactive transactions"
         c.k_scheme.Scheme.name)
  else begin
    Mutex.lock s.s_mu;
    if s.s_closed then begin
      Mutex.unlock s.s_mu;
      Error "service is shutting down"
    end
    else begin
      let id = Atomic.fetch_and_add s.s_next_id 1 in
      s.s_in_flight <- s.s_in_flight + 1;
      Mutex.unlock s.s_mu;
      Shard_table.register c.k_locks ~id ~birth:id;
      (match c.k_config.journal with Some j -> j.j_begin id | None -> ());
      let txn = Txn.make ~id ~birth:id in
      let ctx =
        {
          Scheme.txn;
          acquire =
            (fun r -> Shard_table.acquire_blocking c.k_locks ~policy:c.k_wait_policy r);
        }
      in
      record c (History.Begin id);
      oemit c (Par_obs.E_begin { txn = id; attempt = 0 });
      let it = { it_service = s; it_id = id; it_txn = txn; it_ctx = ctx; it_open = true } in
      match Exec.begin_txn ~scheme:c.k_scheme ~store:c.k_store ~ctx [] with
      | () -> Ok it
      | exception e ->
          itxn_abort_internal it None;
          Error (Printexc.to_string e)
    end
  end

let itxn_perform it action =
  let c = it.it_service.s_core in
  if not it.it_open then Error "transaction is closed"
  else
    let on_read oid f = record c (History.Read (it.it_id, oid, f)) in
    let on_write oid f = record c (History.Write (it.it_id, oid, f)) in
    match
      Exec.perform ~scheme:c.k_scheme ~store:c.k_store ~ctx:it.it_ctx ~on_read ~on_write
        ~max_steps:c.k_config.max_steps action
    with
    | () -> Ok ()
    | exception Shard_table.Aborted reason ->
        itxn_abort_internal it (Some reason);
        Error (Printf.sprintf "aborted: %s" (Shard_table.reason_name reason))
    | exception e ->
        itxn_abort_internal it None;
        Error (Printexc.to_string e)

let itxn_commit it =
  let c = it.it_service.s_core in
  if not it.it_open then Error "transaction is closed"
  else
    match Shard_table.check_killed c.k_locks it.it_id with
    | () ->
        Txn.commit it.it_txn;
        (match c.k_config.journal with Some j -> j.j_commit it.it_id | None -> ());
        record c (History.Commit it.it_id);
        oemit c (Par_obs.E_commit { txn = it.it_id; attempt = 0 });
        Atomic.incr c.k_n.n_commits;
        tick c (fun p -> Metrics.incr p.pm_commits);
        Shard_table.finish c.k_locks it.it_id;
        ignore (Shard_table.release_all c.k_locks it.it_id);
        itxn_close it;
        Ok ()
    | exception Shard_table.Aborted reason ->
        itxn_abort_internal it (Some reason);
        Error (Printf.sprintf "aborted: %s" (Shard_table.reason_name reason))

let itxn_rollback it = if it.it_open then itxn_abort_internal it None
