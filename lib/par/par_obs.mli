(** Domain-aware event streams for the parallel engine.

    One {!Tavcc_obs.Ring} per writer domain — the workers and the
    detector — so lock-lifecycle and transaction-lifecycle events flow
    off the hot paths without a global mutex: a worker's {!emit} is a
    ring push on its own ring, found through a domain-local key set by
    {!attach}.  A single coordinator (the detector domain while the run
    is live, the main domain after the joins) {!drain}s all rings,
    merges the batches by timestamp, and feeds them to the
    {!Tavcc_obs.Contention} profiler; with [keep_events] the merged
    stream is retained for {!to_trace}, the multicore Perfetto export.

    Event pairing across rings uses the {!Shard_table} wait ids: a block
    on domain A and its grant on domain B carry the same [wait_id], which
    becomes the flow-event id linking the two tracks in the trace.  The
    drain tolerates a grant surfacing {e before} its block (the rings are
    independent; a batch boundary can fall between them) by parking the
    orphan until its block arrives.

    Overflow never blocks a worker: a full ring drops the event and
    counts it ({!dropped}); sized by [ring_cap] (default 65536). *)

open Tavcc_lock

type ev_kind =
  | E_begin of { txn : int; attempt : int }  (** attempt [n > 0] is a restart *)
  | E_block of {
      txn : int;
      wait_id : int;
      res : Resource.t;
      mode : int;
      queue_depth : int;
    }
  | E_resume of { txn : int; wait_id : int }  (** the waiter unparked *)
  | E_grant of { txn : int; wait_id : int }  (** fired on the releasing domain *)
  | E_kill of {
      victim : int;
      wait_id : int;  (** 0 when the victim was running *)
      res : Resource.t option;  (** what the victim was waiting on *)
      reason : Shard_table.reason;
    }
  | E_commit of { txn : int; attempt : int }
  | E_abort of { txn : int; attempt : int; reason : string }

type ev = { ev_ts : int; ev_dom : int; ev_kind : ev_kind }
(** [ev_ts] in microseconds since {!create}; [ev_dom] is the emitting
    domain's track index. *)

type t

val create : ?ring_cap:int -> ?keep_events:bool -> domains:int -> unit -> t
(** [domains] worker rings plus one detector ring.  [keep_events]
    (default true) retains the drained stream for {!events}/{!to_trace};
    off, only the contention profiler and counters are fed.
    @raise Invalid_argument when [domains <= 0]. *)

val domain_count : t -> int
(** Worker domains; track indices are [0 .. domain_count] with
    {!detector_dom} last. *)

val detector_dom : t -> int

val attach : t -> dom:int -> unit
(** Binds the calling domain to ring [dom] (a worker's index, or
    {!detector_dom}); every subsequent {!emit} on this domain targets
    that ring.  Call once at the top of the domain body.
    @raise Invalid_argument on an out-of-range [dom]. *)

val now_us : t -> int
(** Microseconds since {!create} — the event clock. *)

val emit : t -> ev_kind -> unit
(** Stamps the event with {!now_us} and the attached ring.  Emitting
    from an unattached domain counts the event as dropped. *)

val tracer : t -> Shard_table.tracer
(** The {!Shard_table} hooks rendered as {!emit}s: block, resume, grant
    and kill events with their wait ids. *)

(** {2 Consumer side — one domain at a time} *)

val drain : t -> int
(** Drains every ring, merges the batches by timestamp, feeds the
    contention profiler (and the retained stream).  Single consumer: the
    detector calls this while the run is live; after the joins the main
    domain takes over for the final sweep. *)

val contention : t -> Resource.t Tavcc_obs.Contention.t
(** Safe to read from any domain at any time (internally locked) — what
    [oosim top] polls. *)

val events : t -> ev list
(** The retained stream, timestamp-sorted.  Complete only after a final
    {!drain} with all producers quiescent; empty when [keep_events] is
    off. *)

val pushed : t -> int

val dropped : t -> int
(** Ring overflows plus emissions from unattached domains. *)

val res_key : Resource.t -> string
(** Stable rendering of a resource — the contention report key. *)

val to_trace : ?pid:int -> t -> Tavcc_obs.Trace.event list
(** The Chrome trace-event rendering of {!events}: one track (tid) per
    worker domain plus the detector track, labelled with [thread_name]
    metas; a [Complete] span per transaction attempt named [t<id>#<gen>];
    [Begin]/[End] wait spans; kill instants on the killer's track; and a
    flow arrow per hand-off, from the block on the waiter's track to the
    grant (on the releasing domain's track) or to the kill that ended
    the wait.  Unclosed spans are closed at the last timestamp. *)
