open Tavcc_lock
module LT = Lock_table
module Ring = Tavcc_obs.Ring
module Contention = Tavcc_obs.Contention
module Trace = Tavcc_obs.Trace
module Json = Tavcc_obs.Json

type ev_kind =
  | E_begin of { txn : int; attempt : int }
  | E_block of {
      txn : int;
      wait_id : int;
      res : Resource.t;
      mode : int;
      queue_depth : int;
    }
  | E_resume of { txn : int; wait_id : int }
  | E_grant of { txn : int; wait_id : int }
  | E_kill of {
      victim : int;
      wait_id : int;
      res : Resource.t option;
      reason : Shard_table.reason;
    }
  | E_commit of { txn : int; attempt : int }
  | E_abort of { txn : int; attempt : int; reason : string }

type ev = { ev_ts : int; ev_dom : int; ev_kind : ev_kind }

type t = {
  rings : ev Ring.t array;  (* workers 0..domains-1, detector at [domains] *)
  dls : int option Domain.DLS.key;
  epoch : float;
  keep : bool;
  unattached : int Atomic.t;  (* emissions with no ring — counted as drops *)
  cont : Resource.t Contention.t;
  (* Consumer-only state (the single-drainer contract covers it): *)
  mutable acc : ev list;  (* retained stream, newest batch first *)
  pending_blocks : (int, Resource.t * int) Hashtbl.t;  (* wait_id -> res, ts *)
  orphan_grants : (int, int) Hashtbl.t;  (* grant drained before its block *)
}

let create ?(ring_cap = 65536) ?(keep_events = true) ~domains () =
  if domains <= 0 then invalid_arg "Par_obs.create: domains must be positive";
  {
    rings = Array.init (domains + 1) (fun _ -> Ring.create ring_cap);
    dls = Domain.DLS.new_key (fun () -> None);
    epoch = Unix.gettimeofday ();
    keep = keep_events;
    unattached = Atomic.make 0;
    cont = Contention.create ();
    acc = [];
    pending_blocks = Hashtbl.create 64;
    orphan_grants = Hashtbl.create 16;
  }

let domain_count t = Array.length t.rings - 1
let detector_dom t = domain_count t

let attach t ~dom =
  if dom < 0 || dom >= Array.length t.rings then
    invalid_arg "Par_obs.attach: domain index out of range";
  Domain.DLS.set t.dls (Some dom)

let now_us t = int_of_float ((Unix.gettimeofday () -. t.epoch) *. 1e6)

let emit t kind =
  match Domain.DLS.get t.dls with
  | None -> ignore (Atomic.fetch_and_add t.unattached 1)
  | Some dom ->
      ignore (Ring.push t.rings.(dom) { ev_ts = now_us t; ev_dom = dom; ev_kind = kind })

let tracer t =
  {
    Shard_table.tr_block =
      (fun (r : LT.req) ~wait_id ~queue_depth ->
        emit t
          (E_block
             { txn = r.LT.r_txn; wait_id; res = r.LT.r_res; mode = r.LT.r_mode; queue_depth }));
    tr_resume = (fun (r : LT.req) ~wait_id -> emit t (E_resume { txn = r.LT.r_txn; wait_id }));
    tr_grant = (fun (r : LT.req) ~wait_id -> emit t (E_grant { txn = r.LT.r_txn; wait_id }));
    tr_kill =
      (fun ~victim ~wait_id ~waiting_on reason ->
        emit t
          (E_kill
             {
               victim;
               wait_id;
               res = Option.map (fun (r : LT.req) -> r.LT.r_res) waiting_on;
               reason;
             }));
  }

(* --- consumer side --- *)

(* Close the wait [wait_id] at [ts], attributing the elapsed time to the
   blocked resource.  First closer wins: a grant and the subsequent
   resume both try, the second finds nothing pending. *)
let close_wait t ~wait_id ~ts =
  match Hashtbl.find_opt t.pending_blocks wait_id with
  | Some (res, t0) ->
      Hashtbl.remove t.pending_blocks wait_id;
      Contention.record_wait t.cont res ~wait_us:(ts - t0)
  | None -> ()

let feed t e =
  match e.ev_kind with
  | E_block { res; queue_depth; wait_id; _ } -> (
      Contention.record_block t.cont res ~queue_depth;
      Hashtbl.replace t.pending_blocks wait_id (res, e.ev_ts);
      (* A grant from another ring may have surfaced first. *)
      match Hashtbl.find_opt t.orphan_grants wait_id with
      | Some ts ->
          Hashtbl.remove t.orphan_grants wait_id;
          close_wait t ~wait_id ~ts:(max ts e.ev_ts)
      | None -> ())
  | E_grant { wait_id; _ } ->
      if Hashtbl.mem t.pending_blocks wait_id then close_wait t ~wait_id ~ts:e.ev_ts
      else Hashtbl.replace t.orphan_grants wait_id e.ev_ts
  | E_resume { wait_id; _ } -> close_wait t ~wait_id ~ts:e.ev_ts
  | E_kill { res; wait_id; reason; _ } ->
      Option.iter
        (fun r ->
          Contention.record_kill t.cont
            ~deadlock:(reason = Shard_table.Deadlock_victim)
            r)
        res;
      if wait_id > 0 then close_wait t ~wait_id ~ts:e.ev_ts
  | E_begin _ | E_commit _ | E_abort _ -> ()

let drain t =
  let batch = ref [] in
  Array.iter (fun r -> ignore (Ring.drain r (fun e -> batch := e :: !batch))) t.rings;
  let evs = List.sort (fun a b -> Int.compare a.ev_ts b.ev_ts) !batch in
  List.iter (feed t) evs;
  if t.keep then t.acc <- List.rev_append evs t.acc;
  List.length evs

let contention t = t.cont
let events t = List.sort (fun a b -> Int.compare a.ev_ts b.ev_ts) t.acc

let pushed t = Array.fold_left (fun acc r -> acc + Ring.pushed r) 0 t.rings

let dropped t =
  Atomic.get t.unattached + Array.fold_left (fun acc r -> acc + Ring.dropped r) 0 t.rings

let res_key r = Format.asprintf "%a" Resource.pp r

(* --- Perfetto export --- *)

let to_trace ?(pid = 0) t =
  let evs = events t in
  let out = ref [] in
  let push e = out := e :: !out in
  for d = 0 to domain_count t do
    push
      (Trace.thread_name ~pid ~tid:d
         (if d = detector_dom t then "detector" else Printf.sprintf "worker %d" d))
  done;
  let last_ts = ref 0 in
  let attempts = Hashtbl.create 64 in (* txn -> start ts, dom, attempt *)
  let open_waits = Hashtbl.create 64 in (* wait_id -> waiter dom *)
  let flowed = Hashtbl.create 64 in (* wait ids whose arrow already landed *)
  let span_name txn attempt = Printf.sprintf "t%d#%d" txn attempt in
  let attempt_span ~ts ~outcome txn =
    match Hashtbl.find_opt attempts txn with
    | None -> ()
    | Some (t0, dom, n) ->
        Hashtbl.remove attempts txn;
        push
          (Trace.complete ~cat:"txn" ~pid
             ~args:
               [
                 ("txn", Json.Int txn);
                 ("attempt", Json.Int n);
                 ("outcome", Json.String outcome);
               ]
             ~ts:t0 ~dur:(max 0 (ts - t0)) ~tid:dom (span_name txn n))
  in
  let end_wait ~ts wait_id =
    match Hashtbl.find_opt open_waits wait_id with
    | None -> ()
    | Some dom ->
        Hashtbl.remove open_waits wait_id;
        push (Trace.end_ ~cat:"lock" ~pid ~ts ~tid:dom "wait")
  in
  let land_flow ~ts ~tid wait_id =
    if wait_id > 0 && not (Hashtbl.mem flowed wait_id) then begin
      Hashtbl.replace flowed wait_id ();
      push (Trace.flow_end ~cat:"flow" ~pid ~ts ~tid ~id:wait_id "grant")
    end
  in
  List.iter
    (fun e ->
      last_ts := max !last_ts e.ev_ts;
      match e.ev_kind with
      | E_begin { txn; attempt } ->
          (* A begin with a stale open span means the abort event was
             dropped; close it so the track stays well-nested. *)
          attempt_span ~ts:e.ev_ts ~outcome:"lost" txn;
          Hashtbl.replace attempts txn (e.ev_ts, e.ev_dom, attempt)
      | E_commit { txn; _ } -> attempt_span ~ts:e.ev_ts ~outcome:"commit" txn
      | E_abort { txn; reason; _ } -> attempt_span ~ts:e.ev_ts ~outcome:reason txn
      | E_block { txn; wait_id; res; mode; queue_depth } ->
          Hashtbl.replace open_waits wait_id e.ev_dom;
          push
            (Trace.begin_ ~cat:"lock" ~pid
               ~args:
                 [
                   ("txn", Json.Int txn);
                   ("resource", Json.String (res_key res));
                   ("mode", Json.Int mode);
                   ("queue_depth", Json.Int queue_depth);
                   ("wait_id", Json.Int wait_id);
                 ]
               ~ts:e.ev_ts ~tid:e.ev_dom "wait");
          push (Trace.flow_start ~cat:"flow" ~pid ~ts:e.ev_ts ~tid:e.ev_dom ~id:wait_id "grant")
      | E_resume { wait_id; _ } -> end_wait ~ts:e.ev_ts wait_id
      | E_grant { wait_id; _ } -> land_flow ~ts:e.ev_ts ~tid:e.ev_dom wait_id
      | E_kill { victim; wait_id; res; reason } ->
          push
            (Trace.instant ~cat:"kill" ~pid
               ~args:
                 (("victim", Json.Int victim)
                 :: (match res with
                    | None -> []
                    | Some r -> [ ("waiting_on", Json.String (res_key r)) ]))
               ~ts:e.ev_ts ~tid:e.ev_dom
               ("kill:" ^ Shard_table.reason_name reason));
          land_flow ~ts:e.ev_ts ~tid:e.ev_dom wait_id)
    evs;
  (* Close whatever survived the stream (dropped events, torn-down run). *)
  Hashtbl.fold (fun wid dom acc -> (wid, dom) :: acc) open_waits []
  |> List.iter (fun (_, dom) -> push (Trace.end_ ~cat:"lock" ~pid ~ts:!last_ts ~tid:dom "wait"));
  Hashtbl.fold (fun txn _ acc -> txn :: acc) attempts []
  |> List.iter (fun txn -> attempt_span ~ts:!last_ts ~outcome:"unfinished" txn);
  List.rev !out
