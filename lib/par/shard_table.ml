open Tavcc_lock
module LT = Lock_table

type txn_id = int
type reason = Deadlock_victim | Wounded of txn_id | Timed_out | Died

let reason_name = function
  | Deadlock_victim -> "deadlock"
  | Wounded w -> Printf.sprintf "wounded-by-%d" w
  | Timed_out -> "timeout"
  | Died -> "died"

exception Aborted of reason

type wait_policy = Block | Wound | Die_if_older | Never_wait

(* Tracer callbacks fire on the domain where the transition happens (a
   grant on the releasing domain, a wound on the elder's domain, a
   detector kill on the detector domain), sometimes while a shard mutex
   is held — they must not call back into the table.  [Par_obs] feeds
   them into per-domain rings, which is exactly that cheap. *)
type tracer = {
  tr_block : LT.req -> wait_id:int -> queue_depth:int -> unit;
  tr_resume : LT.req -> wait_id:int -> unit;
  tr_grant : LT.req -> wait_id:int -> unit;
  tr_kill : victim:txn_id -> wait_id:int -> waiting_on:LT.req option -> reason -> unit;
}

type shard = { mu : Mutex.t; tbl : LT.t }

(* One slot per live transaction.  Lock ordering: a shard mutex may be
   held while taking a slot mutex (grant, wound, park), never the
   reverse — [kill] and the wait loop take only the slot mutex. *)
type slot = {
  s_mu : Mutex.t;
  s_cond : Condition.t;
  s_birth : int;
  mutable s_active : bool;  (* false once the attempt finished *)
  mutable s_waiting_since : float;  (* > 0 while parked (Unix time) *)
  mutable s_granted : bool;  (* the parked request was granted *)
  mutable s_kill : reason option;
  mutable s_wait_id : int;  (* id of the wait in progress, 0 when none *)
  mutable s_wait_req : LT.req option;
      (* the parked request — lets a killer report what the victim was
         waiting on without calling [waiting_for] (which takes shard
         mutexes the wound path already holds) *)
}

type t = {
  shards : shard array;
  reg_mu : Mutex.t;
  slots : (txn_id, slot) Hashtbl.t;
  tracer : tracer option;
  wait_ids : int Atomic.t;  (* fresh id per park, links block to grant/kill *)
}

let create ?(shards = 8) ?metrics ?clock ?tracer ~conflict () =
  if shards <= 0 then invalid_arg "Shard_table.create: shards must be positive";
  {
    shards =
      Array.init shards (fun _ ->
          { mu = Mutex.create (); tbl = LT.create ?metrics ?clock ~conflict () });
    reg_mu = Mutex.create ();
    slots = Hashtbl.create 64;
    tracer;
    wait_ids = Atomic.make 0;
  }

let shard_count t = Array.length t.shards
let shard_of t res = Resource.hash res mod Array.length t.shards
let shard t res = t.shards.(shard_of t res)

let with_mu mu f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

(* --- registry --- *)

let find_slot_opt t id = with_mu t.reg_mu (fun () -> Hashtbl.find_opt t.slots id)

let find_slot t id =
  match find_slot_opt t id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Shard_table: transaction %d is not registered" id)

let register t ~id ~birth =
  with_mu t.reg_mu (fun () ->
      (* A fresh record per attempt: a kill aimed at the previous
         incarnation cannot leak into this one. *)
      Hashtbl.replace t.slots id
        {
          s_mu = Mutex.create ();
          s_cond = Condition.create ();
          s_birth = birth;
          s_active = true;
          s_waiting_since = 0.;
          s_granted = false;
          s_kill = None;
          s_wait_id = 0;
          s_wait_req = None;
        })

let finish t id =
  match find_slot_opt t id with
  | None -> ()
  | Some s ->
      with_mu s.s_mu (fun () ->
          s.s_active <- false;
          s.s_waiting_since <- 0.)

let kill_slot t ~victim s reason =
  let landed, wid, wreq =
    with_mu s.s_mu (fun () ->
        if s.s_active && s.s_kill = None then begin
          s.s_kill <- Some reason;
          Condition.broadcast s.s_cond;
          (true, s.s_wait_id, s.s_wait_req)
        end
        else (false, 0, None))
  in
  if landed then
    Option.iter
      (fun tr ->
        (* [wait_id] is 0 for a running victim; the slot's stored request
           avoids [waiting_for] here — the wound path holds a shard
           mutex. *)
        tr.tr_kill ~victim ~wait_id:(if wreq = None then 0 else wid) ~waiting_on:wreq reason)
      t.tracer;
  landed

let kill t ~victim reason =
  match find_slot_opt t victim with None -> false | Some s -> kill_slot t ~victim s reason

let check_killed t id =
  match find_slot_opt t id with
  | None -> ()
  | Some s -> (
      match with_mu s.s_mu (fun () -> s.s_kill) with
      | Some r -> raise (Aborted r)
      | None -> ())

let birth_of t id = Option.map (fun s -> s.s_birth) (find_slot_opt t id)

let waiting_txns t =
  let now = Unix.gettimeofday () in
  with_mu t.reg_mu (fun () ->
      Hashtbl.fold
        (fun id s acc ->
          let since = with_mu s.s_mu (fun () -> if s.s_active then s.s_waiting_since else 0.) in
          if since > 0. then (id, now -. since) :: acc else acc)
        t.slots [])
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* --- wake-up plumbing --- *)

let signal_granted t (reqs : LT.req list) =
  List.iter
    (fun (r : LT.req) ->
      match find_slot_opt t r.LT.r_txn with
      | None -> ()
      | Some s ->
          let wid =
            with_mu s.s_mu (fun () ->
                s.s_granted <- true;
                Condition.broadcast s.s_cond;
                if s.s_wait_req = None then 0 else s.s_wait_id)
          in
          (* The grant event fires on the {e releasing} domain — that is
             the hand-off edge the flow arrows in the trace draw. *)
          if wid > 0 then Option.iter (fun tr -> tr.tr_grant r ~wait_id:wid) t.tracer)
    reqs

(* --- non-blocking mirror --- *)

let acquire t req =
  let sh = shard t req.LT.r_res in
  with_mu sh.mu (fun () -> LT.acquire sh.tbl req)

let release_all t id =
  let granted =
    Array.fold_left
      (fun acc sh -> acc @ with_mu sh.mu (fun () -> LT.release_all sh.tbl id))
      [] t.shards
  in
  signal_granted t granted;
  granted

let holders t res = with_mu (shard t res).mu (fun () -> LT.holders (shard t res).tbl res)
let queued t res = with_mu (shard t res).mu (fun () -> LT.queued (shard t res).tbl res)
let holds t id res = with_mu (shard t res).mu (fun () -> LT.holds (shard t res).tbl id res)

let locks_of t id =
  Array.fold_left (fun acc sh -> acc @ with_mu sh.mu (fun () -> LT.locks_of sh.tbl id)) [] t.shards

let waiting_for t id =
  Array.fold_left
    (fun acc sh ->
      match acc with
      | Some _ -> acc
      | None -> with_mu sh.mu (fun () -> LT.waiting_for sh.tbl id))
    None t.shards

let waits_for_edges t =
  Array.fold_left
    (fun acc sh -> acc @ with_mu sh.mu (fun () -> LT.waits_for_edges sh.tbl))
    [] t.shards
  |> List.sort_uniq compare

(* Cycle search over an explicit edge list: DFS with the classical
   white/gray/black colouring, returning the gray path segment that
   closes the cycle (same shape as [Lock_table.find_deadlock]). *)
let find_cycle ?from edges =
  let adj = Hashtbl.create 64 in
  let nodes = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace nodes a ();
      Hashtbl.replace nodes b ();
      Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
    edges;
  let color = Hashtbl.create 64 in
  let rec dfs path n =
    match Hashtbl.find_opt color n with
    | Some 2 -> None
    | Some 1 ->
        (* [n] is on the current path: the cycle is the path segment from
           its previous occurrence.  The head of [path] is this repeat
           visit of [n] itself, so the cut scans the tail. *)
        let rec cut = function
          | [] -> []
          | x :: tl -> if x = n then [ x ] else x :: cut tl
        in
        Some (List.rev (cut (List.tl path)))
    | _ -> (
        Hashtbl.replace color n 1;
        let succs = Option.value ~default:[] (Hashtbl.find_opt adj n) in
        match List.find_map (fun m -> dfs (m :: path) m) succs with
        | Some c -> Some c
        | None ->
            Hashtbl.replace color n 2;
            None)
  in
  match from with
  | Some f -> dfs [ f ] f
  | None ->
      Hashtbl.fold
        (fun n () acc -> match acc with Some _ -> acc | None -> dfs [ n ] n)
        nodes None

let find_cycle_edges = find_cycle

let find_deadlock ?from t =
  if Array.length t.shards = 1 then
    with_mu t.shards.(0).mu (fun () -> LT.find_deadlock ?from t.shards.(0).tbl)
  else
    (* Intra-shard cycles first (each shard's own incremental graph),
       then the union graph for cycles that cross shards. *)
    let intra =
      Array.fold_left
        (fun acc sh ->
          match acc with
          | Some _ -> acc
          | None -> with_mu sh.mu (fun () -> LT.find_deadlock ?from sh.tbl))
        None t.shards
    in
    match intra with Some c -> Some c | None -> find_cycle ?from (waits_for_edges t)

let stats t =
  let acc = LT.copy_stats (with_mu t.shards.(0).mu (fun () -> LT.stats t.shards.(0).tbl)) in
  Array.iteri
    (fun i sh ->
      if i > 0 then begin
        let s = with_mu sh.mu (fun () -> LT.copy_stats (LT.stats sh.tbl)) in
        acc.LT.requests <- acc.LT.requests + s.LT.requests;
        acc.LT.immediate <- acc.LT.immediate + s.LT.immediate;
        acc.LT.waits <- acc.LT.waits + s.LT.waits;
        acc.LT.conversions <- acc.LT.conversions + s.LT.conversions;
        acc.LT.reacquires <- acc.LT.reacquires + s.LT.reacquires;
        acc.LT.granted_after_wait <- acc.LT.granted_after_wait + s.LT.granted_after_wait;
        acc.LT.max_queue_depth <- max acc.LT.max_queue_depth s.LT.max_queue_depth
      end)
    t.shards;
  acc

let per_shard_stats t =
  Array.to_list t.shards
  |> List.map (fun sh -> with_mu sh.mu (fun () -> LT.copy_stats (LT.stats sh.tbl)))

(* --- stall reports --- *)

type stall_txn = {
  st_txn : txn_id;
  st_parked_s : float;
  st_granted : bool;
  st_kill : reason option;
  st_waiting_for : LT.req option;
  st_holders : LT.req list;
  st_queued : LT.req list;
  st_locks : LT.req list;
}

type stall_report = {
  sr_elapsed_s : float;
  sr_txns : stall_txn list;
  sr_edges : (txn_id * txn_id) list;
  sr_edges_rebuilt : (txn_id * txn_id) list;
}

let stall_report ?(elapsed_s = 0.) t =
  let ids =
    with_mu t.reg_mu (fun () -> Hashtbl.fold (fun id _ acc -> id :: acc) t.slots [])
    |> List.sort Int.compare
  in
  let now = Unix.gettimeofday () in
  let txns =
    List.filter_map
      (fun id ->
        match find_slot_opt t id with
        | None -> None
        | Some s ->
            let active, since, granted, kill =
              with_mu s.s_mu (fun () -> (s.s_active, s.s_waiting_since, s.s_granted, s.s_kill))
            in
            if not active then None
            else
              let waiting = waiting_for t id in
              let holders_q, queued_q =
                match waiting with
                | None -> ([], [])
                | Some r -> (holders t r.LT.r_res, queued t r.LT.r_res)
              in
              Some
                {
                  st_txn = id;
                  st_parked_s = (if since > 0. then now -. since else 0.);
                  st_granted = granted;
                  st_kill = kill;
                  st_waiting_for = waiting;
                  st_holders = holders_q;
                  st_queued = queued_q;
                  st_locks = locks_of t id;
                })
      ids
  in
  {
    sr_elapsed_s = elapsed_s;
    sr_txns = txns;
    sr_edges = waits_for_edges t;
    sr_edges_rebuilt =
      Array.fold_left
        (fun acc sh -> acc @ with_mu sh.mu (fun () -> LT.waits_for_edges_rebuild sh.tbl))
        [] t.shards
      |> List.sort_uniq compare;
  }

let pp_stall_report ppf sr =
  let show r = Format.asprintf "%a" LT.pp_req r in
  List.iter
    (fun st ->
      Format.fprintf ppf "txn %d: %s granted=%b kill=%s@," st.st_txn
        (if st.st_parked_s > 0. then Printf.sprintf "PARKED %.3fs" st.st_parked_s
         else "running")
        st.st_granted
        (match st.st_kill with None -> "-" | Some r -> reason_name r);
      (match st.st_waiting_for with
      | Some r ->
          Format.fprintf ppf "  waiting-for %s; holders=[%s] queued=[%s]@," (show r)
            (String.concat "; " (List.map show st.st_holders))
            (String.concat "; " (List.map show st.st_queued))
      | None -> ());
      List.iter (fun r -> Format.fprintf ppf "  lock %s@," (show r)) st.st_locks)
    sr.sr_txns;
  let pp_edges name edges =
    Format.fprintf ppf "%s: %s@," name
      (String.concat " " (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges))
  in
  pp_edges "edges(incremental)" sr.sr_edges;
  pp_edges "edges(rebuilt)" sr.sr_edges_rebuilt

module Json = Tavcc_obs.Json

let stall_report_to_json sr =
  let req_json r = Json.String (Format.asprintf "%a" LT.pp_req r) in
  let edges_json es =
    Json.List (List.map (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ]) es)
  in
  Json.Obj
    [
      ("elapsed_s", Json.Float sr.sr_elapsed_s);
      ( "txns",
        Json.List
          (List.map
             (fun st ->
               Json.Obj
                 ([
                    ("txn", Json.Int st.st_txn);
                    ( "state",
                      Json.String (if st.st_parked_s > 0. then "parked" else "running") );
                    ("parked_s", Json.Float st.st_parked_s);
                    ("granted", Json.Bool st.st_granted);
                    ( "kill",
                      match st.st_kill with
                      | None -> Json.Null
                      | Some r -> Json.String (reason_name r) );
                  ]
                 @ (match st.st_waiting_for with
                   | None -> []
                   | Some r ->
                       [
                         ("waiting_for", req_json r);
                         ("holders", Json.List (List.map req_json st.st_holders));
                         ("queued", Json.List (List.map req_json st.st_queued));
                       ])
                 @ [ ("locks", Json.List (List.map req_json st.st_locks)) ]))
             sr.sr_txns) );
      ("edges", edges_json sr.sr_edges);
      ("edges_rebuilt", edges_json sr.sr_edges_rebuilt);
    ]

let pp_state ppf t = pp_stall_report ppf (stall_report t)

(* --- blocking acquisition --- *)

let acquire_blocking t ~policy (req : LT.req) =
  let me = find_slot t req.LT.r_txn in
  (match with_mu me.s_mu (fun () -> me.s_kill) with
  | Some r -> raise (Aborted r)
  | None -> ());
  let sh = shard t req.LT.r_res in
  Mutex.lock sh.mu;
  match LT.acquire sh.tbl req with
  | LT.Granted -> Mutex.unlock sh.mu
  | LT.Waiting -> (
      let decision =
        match policy with
        | Block -> `Wait
        | Never_wait -> `Die
        | Wound ->
            (* Wound every younger transaction in the way, then wait for
               the older ones; the victims abort at their own next lock
               operation or wake-up. *)
            let blocking =
              LT.blockers sh.tbl req
              |> List.map (fun (r : LT.req) -> r.LT.r_txn)
              |> List.sort_uniq Int.compare
            in
            List.iter
              (fun vid ->
                match find_slot_opt t vid with
                | Some v when v.s_birth > me.s_birth ->
                    ignore (kill_slot t ~victim:vid v (Wounded req.LT.r_txn))
                | _ -> ())
              blocking;
            `Wait
        | Die_if_older ->
            let blocking = LT.blockers sh.tbl req in
            if
              List.exists
                (fun (r : LT.req) ->
                  match find_slot_opt t r.LT.r_txn with
                  | Some v -> v.s_birth < me.s_birth
                  | None -> false)
                blocking
            then `Die
            else `Wait
      in
      match decision with
      | `Die ->
          Mutex.unlock sh.mu;
          (* The queued request stays; the abort path's [release_all]
             removes it. *)
          raise (Aborted Died)
      | `Wait ->
          (* Arm the slot while still holding the shard mutex: a grant
             needs that mutex, so it cannot slip in before the flags are
             reset (no lost wake-up). *)
          let wid = 1 + Atomic.fetch_and_add t.wait_ids 1 in
          let queue_depth = List.length (LT.queued sh.tbl req.LT.r_res) in
          with_mu me.s_mu (fun () ->
              me.s_granted <- false;
              me.s_waiting_since <- Unix.gettimeofday ();
              me.s_wait_id <- wid;
              me.s_wait_req <- Some req);
          Mutex.unlock sh.mu;
          Option.iter (fun tr -> tr.tr_block req ~wait_id:wid ~queue_depth) t.tracer;
          let unpark () =
            with_mu me.s_mu (fun () ->
                me.s_waiting_since <- 0.;
                me.s_wait_req <- None);
            Option.iter (fun tr -> tr.tr_resume req ~wait_id:wid) t.tracer
          in
          let rec park () =
            Mutex.lock me.s_mu;
            while (not me.s_granted) && me.s_kill = None do
              Condition.wait me.s_cond me.s_mu
            done;
            let k = me.s_kill in
            Mutex.unlock me.s_mu;
            match k with
            | Some r ->
                (* A kill that raced with the grant wins: the
                   wound/deadlock resolution wants the locks released. *)
                unpark ();
                raise (Aborted r)
            | None ->
                (* Grant signals are addressed by transaction id, so one
                   collected for a previous incarnation (killed between
                   the table grant and [signal_granted]) can land on this
                   slot after the restart re-registered it.  Trust the
                   table, not the flag: still queued means the wake-up was
                   stale — re-arm under the shard mutex (a real grant
                   needs it, so it cannot slip between check and reset)
                   and park again. *)
                Mutex.lock sh.mu;
                let still_queued =
                  List.exists
                    (fun (r : LT.req) -> r.LT.r_txn = req.LT.r_txn)
                    (LT.queued sh.tbl req.LT.r_res)
                in
                if still_queued then begin
                  with_mu me.s_mu (fun () -> me.s_granted <- false);
                  Mutex.unlock sh.mu;
                  park ()
                end
                else begin
                  Mutex.unlock sh.mu;
                  unpark ()
                end
          in
          park ())
