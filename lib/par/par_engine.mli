(** Parallel execution driver: real transactions on real cores.

    Where [Tavcc_sim.Engine] interleaves cooperative fibers under a
    seeded single-threaded scheduler, this engine runs the {e same} jobs
    through the {e same} pluggable {!Tavcc_cc.Scheme} callbacks on a pool
    of OCaml 5 domains, against a {!Shard_table} whose blocking is real:
    a conflicting request parks its worker on a condition variable until
    the lock manager grants it.

    The deadlock policies mirror the step engine's
    {!Tavcc_sim.Engine.deadlock_policy}:
    - [Detect] — a periodic detector domain snapshots the per-shard
      waits-for edges, unions them (cycles may cross shards) and kills
      the youngest member of every cycle;
    - [Wound_wait] / [Wait_die] / [No_wait] — decided inline at block
      time from registered births;
    - [Timeout n] — [n] is interpreted as {e milliseconds} of real wait
      (the step engine counts scheduler steps; there is no step clock
      here), enforced by the detector's periodic sweep.

    The detector domain runs under every policy: under the prevention
    policies it is a backstop for the rare conversion-induced cycles
    that inline wounding cannot see.

    Safety requirements on the shared store: jobs must not create or
    delete instances (the generated workloads never do — the engine
    pre-touches every extent so even extent scans mutate nothing), and
    every field access is covered by the scheme's locks (strict 2PL), so
    data accesses to the same slot are ordered by lock hand-off.
    Transactions killed while {e running} (wound, phantom deadlock) only
    notice at their next lock operation or at commit; a victim that
    reaches commit first is allowed to commit — it releases its locks
    either way, so progress is preserved.

    With [record_history] the raw field accesses go into a
    mutex-protected {!Tavcc_txn.History}, and because conflicting
    accesses are ordered by 2PL the recorded order is conflict-faithful:
    [History.conflict_serializable] is a sound oracle for the parallel
    run, exactly as for the step engine.  Recording serialises the hot
    path — leave it off when measuring throughput. *)

open Tavcc_lang
open Tavcc_cc

type config = {
  domains : int;  (** worker domains (>= 1) *)
  shards : int;  (** lock-manager shards (>= 1) *)
  policy : Tavcc_sim.Engine.deadlock_policy;
  max_restarts : int;  (** per transaction; beyond it the txn fails *)
  max_steps : int;  (** interpreter fuel per action *)
  detector_period_us : int;  (** deadlock/timeout sweep period *)
  restart_backoff_us : int;
      (** base of the exponential abort backoff: attempt [n] sleeps a
          uniformly jittered duration in [[b/2, b]] for
          [b = min cap (base * 2^(n-1))], the jitter seeded from
          [(txn id, attempt)] so runs stay reproducible; 0 disables *)
  backoff_cap_us : int;  (** ceiling of the exponential doubling *)
  record_history : bool;
  metrics : Tavcc_obs.Metrics.t option;
      (** counters [par.commits], [par.aborts], [par.deadlocks],
          [par.wounds], [par.died], [par.timeouts], [par.restarts], the
          [par.txn_us] per-commit latency and [par.backoff_us] sleep
          histograms, a [par.dom<i>.busy_us] busy-time counter per worker
          domain, and the shard tables' [lock.*] metrics with a
          microsecond clock *)
  obs : Par_obs.t option;
      (** per-domain event streams: workers and the lock manager emit
          transaction- and lock-lifecycle events into domain-local rings,
          the detector domain drains them while the run is live (a final
          drain happens after the joins), feeding the contention profiler
          and — with [keep_events] — the multicore Perfetto export.  Must
          have been created with this config's [domains].
          @raise Invalid_argument otherwise *)
  stall_sink : Shard_table.stall_report Tavcc_obs.Sink.t;
      (** where the [TAVCC_PAR_WATCHDOG] stall dump goes: [Sink.null]
          (the default) pretty-prints to stderr as before; any other sink
          receives the structured {!Shard_table.stall_report} instead
          (render with [Shard_table.stall_report_to_json]).  The env var
          still arms the watchdog either way. *)
  probe :
    (dom:int ->
    txn:int ->
    holds:(Tavcc_lock.Resource.t -> (int * bool) list) ->
    Exec.probe)
    option;
      (** builds a per-transaction {!Exec.probe} when the worker domain
          [dom] picks the job up; [holds] queries the shard table for the
          (mode, hier) pairs the transaction holds on a resource.  The
          probe runs on the worker domain with the scheme's locks already
          granted — feed observations through domain-local structures
          (one {!Tavcc_sanitize.Recorder}/{!Tavcc_sanitize.Monitor} per
          domain) to keep the hot path mutex-free. *)
  journal : journal option;
      (** durability hooks, called on the thread that runs the
          transaction (writes between them run on the same thread, so a
          thread-keyed ambient transaction works): [j_begin] right after
          the transaction registers with the lock manager, [j_commit]
          after a successful commit {e while the locks are still held}
          (a journalled commit must be durable before its effects are
          readable), and [j_abort] after [Txn.abort] rolled the store
          back, also under the locks.  [Tavcc_storage.Engine.journal]
          builds the record for the disk-resident store. *)
}

(** See {!config.journal}. *)
and journal = {
  j_begin : int -> unit;
  j_commit : int -> unit;
  j_abort : int -> unit;
}

val default_config : config
(** 4 domains, 8 shards, [Detect], 1000 restarts, 500 us detector
    period, 50 us backoff base capped at 5 ms, no history, no
    metrics, no event streams, stderr stall dumps, no probe. *)

type result = {
  commits : int;
  aborts : int;  (** aborted attempts (then restarted) *)
  deadlocks : int;  (** cycles the detector resolved *)
  wounds : int;
  died : int;
  timeouts : int;
  restarts : int;
  snapshot_commits : int;  (** mvcc: lock-free read-only commits *)
  snapshot_aborts : int;  (** mvcc: snapshot transactions that failed anyway *)
  occ_commits : int;  (** mvcc: optimistic transactions that validated *)
  occ_validation_failures : int;  (** mvcc: optimistic commits that lost *)
  failed : (int * string) list;
  wall_seconds : float;
  throughput : float;  (** committed transactions per second *)
  lock_stats : Tavcc_lock.Lock_table.stats;
  history : Tavcc_txn.History.t option;  (** when [record_history] *)
}

val pp_result : Format.formatter -> result -> unit

val serializable : result -> bool
(** [History.conflict_serializable] of the recorded history; true when no
    history was recorded (nothing to refute — enable [record_history] for
    a meaningful check). *)

val run :
  ?config:config ->
  scheme:Scheme.t ->
  store:Ast.body Tavcc_model.Store.t ->
  jobs:(int * Exec.action list) list ->
  unit ->
  result
(** Ids must be distinct and positive; births equal ids (lower id =
    older, as in the step engine).  Jobs are dispensed to workers from an
    atomic cursor in list order; every job runs to commit or to
    [max_restarts]. *)

(** {1 Submission service}

    The same engine behind a bounded job queue, for external drivers
    (the network server front-end) that produce transactions over time
    instead of as one batch.  [service_start] spawns the worker domains
    and the detector immediately; they idle on a condition variable
    until jobs arrive.  The queue bound is the admission-control point:
    a [submit] against a full queue returns {!Saturated} instead of
    buffering without limit, and the caller decides whether to shed or
    retry.  Transaction ids are assigned internally (monotonically from
    1, so birth = id keeps the age order of the batch driver). *)

type service

type job_status =
  | Job_committed of { restarts : int }
  | Job_failed of string
      (** exceeded [max_restarts], or the interpreter raised *)

type submit_outcome =
  | Accepted
  | Saturated  (** queue at capacity — shed or retry later *)
  | Closed  (** [service_stop] has begun *)

val service_start :
  ?config:config ->
  ?queue_capacity:int ->
  scheme:Scheme.t ->
  store:Ast.body Tavcc_model.Store.t ->
  unit ->
  service
(** Default [queue_capacity] is 256 queued (not yet running) jobs.
    @raise Invalid_argument if it is not positive. *)

val submit :
  service -> actions:Exec.action list -> k:(job_status -> unit) -> submit_outcome
(** On [Accepted], [k] runs exactly once, on the worker domain that
    executed the job, after its locks are released.  [k] must not block
    for long (it occupies a worker) and exceptions it raises are
    swallowed.  On [Saturated]/[Closed] the job was not enqueued and [k]
    will never run. *)

val service_backlog : service -> int
(** Jobs queued and not yet picked up by a worker. *)

val service_in_flight : service -> int
(** Queued jobs + running jobs + open interactive transactions. *)

val service_drain : service -> unit
(** Block until [service_in_flight] is 0.  Callers must stop submitting
    first (or the wait may never end); typically: stop accepting,
    [service_drain], [service_stop]. *)

val service_waiting : service -> (int * float) list
(** [Shard_table.waiting_txns] of the underlying lock manager:
    transactions currently parked, with seconds waited. *)

val service_stop : service -> result
(** Close the queue (subsequent [submit]s return [Closed]), let the
    workers drain what is already queued, join them and the detector,
    and return the aggregate result.  Open interactive transactions are
    the caller's to resolve {e before} calling this — their locks are
    not force-released. *)

(** {1 Interactive transactions}

    A session-owned transaction driven one statement at a time on the
    caller's own thread, against the same shard table the worker domains
    use — this is what gives a network session Begin/Stmt/Commit
    pipelining.  Unlike batch jobs there is no automatic restart: any
    abort (deadlock victim, wound, runtime error) closes the transaction
    and surfaces as [Error]; the client decides whether to retry.

    Only schemes whose per-access hooks actually acquire locks can run
    interactively: a preclaiming scheme ([tav-pre]) sees no action list
    up front and would execute unlocked, and a multi-version scheme
    needs the whole action list to classify the transaction.  Check
    {!interactive_supported} first; [itxn_begin] refuses otherwise. *)

type itxn

val interactive_supported : Scheme.t -> bool

val itxn_begin : service -> (itxn, string) Stdlib.result
(** Registers with the lock manager and counts toward
    [service_in_flight] until commit or rollback. *)

val itxn_id : itxn -> int

val itxn_perform : itxn -> Exec.action -> (unit, string) Stdlib.result
(** Runs one action under the scheme's per-access locking.  On [Error]
    the transaction has been aborted: its writes undone, its locks
    released, any waiters woken — it is closed and must not be used
    again.  Must be called from the session's own thread, never a worker
    domain. *)

val itxn_commit : itxn -> (unit, string) Stdlib.result
(** Checks the kill flag one last time (the deadlock detector may have
    chosen this transaction while it was idle between statements); on
    [Error] the transaction was aborted and released as in
    {!itxn_perform}. *)

val itxn_rollback : itxn -> unit
(** Abort and release; counted in [result.aborts].  Idempotent — safe on
    an already-closed transaction (e.g. teardown after an abort). *)
