(** Thread-safe sharded lock manager.

    [Lock_table] is a sequential data structure driven by the step
    simulator; this module makes it safe for real OCaml 5 domains by
    splitting the resource space over [N] independent shards — shard
    [Resource.hash r mod N] owns resource [r] — each a plain
    [Lock_table] protected by its own mutex.  Requests on different
    shards never contend on a lock-manager mutex, which is what lets
    compatible workloads (TAV field modes on disjoint fields) scale.

    Two layers:

    - a {e non-blocking} mirror of the [Lock_table] API ({!acquire},
      {!release_all}, {!holders}, {!find_deadlock}, ...) used by
      single-threaded drivers and the S=1 equivalence tests — every call
      is individually thread-safe but returns [Waiting] instead of
      blocking;
    - a {e blocking} layer ({!acquire_blocking}) for worker domains:
      a transaction that must wait parks on its own condition variable
      until the grant arrives ({!release_all} signals it) or until it is
      {!kill}ed — by the cross-shard deadlock detector, a wound-wait
      elder, or a timeout — in which case {!Aborted} is raised in the
      waiter's own domain so it can undo and restart.

    Deadlock handling is split: the wound-wait / wait-die / no-wait
    decisions happen inline at block time (under the shard mutex, using
    the registered births), while {e detection} is left to an external
    periodic detector (see [Par_engine]) that snapshots the per-shard
    waits-for edges with {!waits_for_edges} — a cycle may cross shards —
    and kills the youngest member of each cycle.  Because the snapshot is
    not globally atomic, the detector can observe a phantom cycle whose
    edges never coexisted (an abort in mid-scan); the consequence is an
    unnecessary restart, never a safety violation. *)

open Tavcc_lock

type txn_id = int

(** Why a transaction was aborted.  [Deadlock_victim] comes from the
    detector, [Wounded w] from the older transaction [w] at its block
    site, [Timed_out] from the timeout sweep, [Died] is the wait-die /
    no-wait self-abort. *)
type reason = Deadlock_victim | Wounded of txn_id | Timed_out | Died

val reason_name : reason -> string

exception Aborted of reason
(** Raised by {!acquire_blocking} and {!check_killed} in the victim's own
    domain.  The catcher must undo the transaction and call
    {!release_all}. *)

(** What {!acquire_blocking} does when the request must wait:
    [Block] parks unconditionally (deadlock handling is the detector's
    job); [Wound] first kills every {e younger} blocker (wound-wait);
    [Die_if_older] raises {!Aborted}[ Died] when some blocker is older
    (wait-die); [Never_wait] always raises (no-wait). *)
type wait_policy = Block | Wound | Die_if_older | Never_wait

(** Lifecycle hooks for the blocking layer, fired on the domain where the
    transition happens: {!tr_block} on the waiter as it parks (with a
    fresh [wait_id] and the resource's queue depth at that instant),
    {!tr_grant} on the {e releasing} domain as it hands the lock over,
    {!tr_resume} on the waiter as it unparks (grant or kill — it closes
    the wait that {!tr_block} opened), {!tr_kill} on the killer (detector
    sweep, wound-wait elder, timeout) with what the victim was waiting on
    ([wait_id] 0 and [waiting_on] [None] for a running victim).

    Callbacks may run under a shard mutex (the wound path) and must not
    call back into the table; pushing into a per-domain {!Tavcc_obs.Ring}
    is the intended use. *)
type tracer = {
  tr_block : Lock_table.req -> wait_id:int -> queue_depth:int -> unit;
  tr_resume : Lock_table.req -> wait_id:int -> unit;
  tr_grant : Lock_table.req -> wait_id:int -> unit;
  tr_kill :
    victim:txn_id -> wait_id:int -> waiting_on:Lock_table.req option -> reason -> unit;
}

type t

val create :
  ?shards:int ->
  ?metrics:Tavcc_obs.Metrics.t ->
  ?clock:(unit -> int) ->
  ?tracer:tracer ->
  conflict:(Lock_table.req -> Lock_table.req -> bool) ->
  unit ->
  t
(** [shards] defaults to 8.  [metrics] and [clock] are handed to every
    shard's [Lock_table.create]; the shards share one registry (its cells
    are atomic).  @raise Invalid_argument on [shards <= 0]. *)

val shard_count : t -> int
val shard_of : t -> Resource.t -> int

(** {2 Transaction registry}

    The blocking layer needs to know every live transaction: its birth
    (for the priority policies) and a slot holding its condition
    variable and kill flag.  Workers {!register} at the start of every
    attempt (re-registering resets a stale kill flag) and {!finish} when
    the attempt commits or aborts, after which {!kill} refuses the id. *)

val register : t -> id:txn_id -> birth:int -> unit
val finish : t -> txn_id -> unit

val kill : t -> victim:txn_id -> reason -> bool
(** Marks the victim for abort and wakes it if it is parked.  False when
    the id is finished, unknown, or already killed (the kill is not
    double-counted).  A running victim only notices at its next
    {!acquire_blocking} or {!check_killed}. *)

val check_killed : t -> txn_id -> unit
(** @raise Aborted if a kill is pending — call before committing. *)

val birth_of : t -> txn_id -> int option

val waiting_txns : t -> (txn_id * float) list
(** Transactions currently parked, with seconds waited so far — the
    timeout sweep's input. *)

(** {2 Blocking acquisition} *)

val acquire_blocking : t -> policy:wait_policy -> Lock_table.req -> unit
(** Returns once the request is held.
    @raise Aborted when the transaction is killed while waiting (or had a
    pending kill on entry), or when the policy decides against waiting.
    The queued request, if any, is left in place — the abort path's
    {!release_all} removes it. *)

(** {2 Non-blocking mirror of [Lock_table]} *)

val acquire : t -> Lock_table.req -> Lock_table.outcome
val release_all : t -> txn_id -> Lock_table.req list
(** Releases across every shard (in shard order) and {e signals} every
    newly granted transaction's slot, so blocked workers resume. *)

val holders : t -> Resource.t -> Lock_table.req list
val queued : t -> Resource.t -> Lock_table.req list
val holds : t -> txn_id -> Resource.t -> (int * bool) list
val locks_of : t -> txn_id -> Lock_table.req list
val waiting_for : t -> txn_id -> Lock_table.req option

val waits_for_edges : t -> (txn_id * txn_id) list
(** Union of the per-shard waits-for graphs, deduplicated and sorted.
    Shards are snapshotted one at a time (see the phantom-cycle caveat
    above). *)

val find_cycle_edges : ?from:txn_id -> (txn_id * txn_id) list -> txn_id list option
(** Pure cycle search over an explicit edge list — what the detector runs
    on a {!waits_for_edges} snapshot (possibly after pruning resolved
    victims). *)

val find_deadlock : ?from:txn_id -> t -> txn_id list option
(** With one shard this delegates to [Lock_table.find_deadlock]
    (bit-for-bit the sequential behaviour); with several it first asks
    each shard, then runs a DFS over the union graph to catch
    cross-shard cycles. *)

val stats : t -> Lock_table.stats
(** Aggregated snapshot: counters are summed across shards,
    [max_queue_depth] is the max. *)

val per_shard_stats : t -> Lock_table.stats list

(** {2 Stall reports}

    A structured snapshot of every live slot (park/grant/kill flags,
    what it waits on, what it holds) plus both waits-for edge sets — what
    the engine's stall watchdog captures.  Taking it grabs the registry,
    slot and shard mutexes one at a time: the picture may be inconsistent
    across transactions but each entry is internally coherent. *)

type stall_txn = {
  st_txn : txn_id;
  st_parked_s : float;  (** seconds parked so far; [0.] when running *)
  st_granted : bool;
  st_kill : reason option;
  st_waiting_for : Lock_table.req option;
  st_holders : Lock_table.req list;  (** holders of the awaited resource *)
  st_queued : Lock_table.req list;  (** queue of the awaited resource *)
  st_locks : Lock_table.req list;  (** everything the transaction holds *)
}

type stall_report = {
  sr_elapsed_s : float;  (** how long the watchdog saw no progress *)
  sr_txns : stall_txn list;
  sr_edges : (txn_id * txn_id) list;  (** incremental waits-for graph *)
  sr_edges_rebuilt : (txn_id * txn_id) list;  (** rebuilt from scratch *)
}

val stall_report : ?elapsed_s:float -> t -> stall_report
val pp_stall_report : Format.formatter -> stall_report -> unit
val stall_report_to_json : stall_report -> Tavcc_obs.Json.t

val pp_state : Format.formatter -> t -> unit
(** [pp_stall_report] of a fresh {!stall_report}. *)
