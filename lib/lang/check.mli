(** Static checks on an ODML schema.

    ODML is dynamically typed; the checker performs the static validation a
    database compiler would do before running the access-vector analysis:

    - every identifier resolves to a field, parameter or local (locals
      shadow parameters, which shadow fields);
    - assignment targets are fields or locals, never parameters;
    - [var] does not redeclare a live local;
    - simple self-sends name a method of the class, with matching arity;
    - prefixed sends [send C'.M to self] target an ancestor class that
      resolves the method, and only [self] may be their receiver;
    - sends to a field of reference type are checked against the declared
      domain of the field (methods and arity);
    - [new C] names a class of the schema;
    - best-effort type inference flags operator and assignment type
      mismatches whenever both sides have statically known types. *)

type error = {
  ce_class : Tavcc_model.Name.Class.t;
  ce_method : Tavcc_model.Name.Method.t option;
  ce_msg : string;
  ce_pos : Token.pos option;
      (** position of the enclosing statement, when the schema came
          through the parser; [None] for synthesised ASTs *)
}

val pp_error : Format.formatter -> error -> unit

val check : Ast.body Tavcc_model.Schema.t -> (unit, error list) result
(** [check s] is [Ok ()] when every method of every class passes all the
    checks, and the full list of diagnostics otherwise. *)
