open Tavcc_model

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Lit of Value.t
  | Ident of string
  | Self
  | New of Name.Class.t
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Send of msg

and msg = {
  msg_prefix : Name.Class.t option;
  msg_name : Name.Method.t;
  msg_args : expr list;
  msg_recv : recv;
  msg_pos : Token.pos option;
}

and recv = Rself | Rexpr of expr

type stmt =
  | Assign of string * expr
  | Var of string * expr
  | Send_stmt of msg
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr
  | At of Token.pos * stmt

type body = stmt list

let stmt_pos = function
  | At (p, _) -> Some p
  | Send_stmt m -> m.msg_pos
  | Assign _ | Var _ | Return _ | While _ | If _ -> None

let rec strip_stmt = function
  | At (_, s) -> strip_stmt s
  | If (c, t, f) -> If (c, strip_body t, strip_body f)
  | While (c, b) -> While (c, strip_body b)
  | (Assign _ | Var _ | Send_stmt _ | Return _) as s -> s

and strip_body b = List.map strip_stmt b

let pp_unop ppf = function
  | Neg -> Format.pp_print_string ppf "-"
  | Not -> Format.pp_print_string ppf "not"

let pp_binop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Mod -> "%"
    | Eq -> "="
    | Ne -> "<>"
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | And -> "and"
    | Or -> "or")

let rec equal_expr a b =
  match (a, b) with
  | Lit x, Lit y -> Value.equal x y
  | Ident x, Ident y -> String.equal x y
  | Self, Self -> true
  | New c, New c' -> Name.Class.equal c c'
  | Unop (o, e), Unop (o', e') -> o = o' && equal_expr e e'
  | Binop (o, l, r), Binop (o', l', r') -> o = o' && equal_expr l l' && equal_expr r r'
  | Send m, Send m' -> equal_msg m m'
  | (Lit _ | Ident _ | Self | New _ | Unop _ | Binop _ | Send _), _ -> false

and equal_msg m m' =
  (* [msg_pos] is deliberately ignored: equality is span-agnostic. *)
  Option.equal Name.Class.equal m.msg_prefix m'.msg_prefix
  && Name.Method.equal m.msg_name m'.msg_name
  && List.equal equal_expr m.msg_args m'.msg_args
  && equal_recv m.msg_recv m'.msg_recv

and equal_recv r r' =
  match (r, r') with
  | Rself, Rself -> true
  | Rexpr e, Rexpr e' -> equal_expr e e'
  | (Rself | Rexpr _), _ -> false

(* Statement equality is span-agnostic: [At] locators are transparent, so
   pretty-print round-trips compare equal whether or not the two sides went
   through the parser. *)
let rec equal_stmt a b =
  match (a, b) with
  | At (_, a), _ -> equal_stmt a b
  | _, At (_, b) -> equal_stmt a b
  | Assign (x, e), Assign (x', e') | Var (x, e), Var (x', e') ->
      String.equal x x' && equal_expr e e'
  | Send_stmt m, Send_stmt m' -> equal_msg m m'
  | If (c, t, f), If (c', t', f') ->
      equal_expr c c' && equal_body t t' && equal_body f f'
  | While (c, b), While (c', b') -> equal_expr c c' && equal_body b b'
  | Return e, Return e' -> equal_expr e e'
  | (Assign _ | Var _ | Send_stmt _ | If _ | While _ | Return _), _ -> false

and equal_body a b = List.equal equal_stmt a b

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Lit _ | Ident _ | Self | New _ -> acc
  | Unop (_, e1) -> fold_expr f acc e1
  | Binop (_, l, r) -> fold_expr f (fold_expr f acc l) r
  | Send m -> fold_msg_exprs f acc m

and fold_msg_exprs f acc m =
  let acc = List.fold_left (fold_expr f) acc m.msg_args in
  match m.msg_recv with Rself -> acc | Rexpr e -> fold_expr f acc e

let rec fold_stmt_exprs f acc = function
  | At (_, s) -> fold_stmt_exprs f acc s
  | Assign (_, e) | Var (_, e) | Return e -> fold_expr f acc e
  | Send_stmt m -> fold_msg_exprs f acc m
  | If (c, t, e) ->
      let acc = fold_expr f acc c in
      let acc = List.fold_left (fold_stmt_exprs f) acc t in
      List.fold_left (fold_stmt_exprs f) acc e
  | While (c, b) ->
      let acc = fold_expr f acc c in
      List.fold_left (fold_stmt_exprs f) acc b

let fold_exprs f acc body = List.fold_left (fold_stmt_exprs f) acc body

let rec fold_msg_in_expr f acc = function
  | Lit _ | Ident _ | Self | New _ -> acc
  | Unop (_, e) -> fold_msg_in_expr f acc e
  | Binop (_, l, r) -> fold_msg_in_expr f (fold_msg_in_expr f acc l) r
  | Send m -> fold_msg_deep f acc m

and fold_msg_deep f acc m =
  let acc = f acc m in
  let acc = List.fold_left (fold_msg_in_expr f) acc m.msg_args in
  match m.msg_recv with Rself -> acc | Rexpr e -> fold_msg_in_expr f acc e

let rec fold_msg_in_stmt f acc = function
  | At (_, s) -> fold_msg_in_stmt f acc s
  | Assign (_, e) | Var (_, e) | Return e -> fold_msg_in_expr f acc e
  | Send_stmt m -> fold_msg_deep f acc m
  | If (c, t, e) ->
      let acc = fold_msg_in_expr f acc c in
      let acc = List.fold_left (fold_msg_in_stmt f) acc t in
      List.fold_left (fold_msg_in_stmt f) acc e
  | While (c, b) ->
      let acc = fold_msg_in_expr f acc c in
      List.fold_left (fold_msg_in_stmt f) acc b

let fold_msgs f acc body = List.fold_left (fold_msg_in_stmt f) acc body
