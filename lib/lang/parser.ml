open Tavcc_model

exception Error of string * Token.pos

type state = { toks : (Token.t * Token.pos) array; mutable i : int }

let peek st = fst st.toks.(st.i)
let pos st = snd st.toks.(st.i)
let advance st = if st.i < Array.length st.toks - 1 then st.i <- st.i + 1

let fail st msg = raise (Error (msg, pos st))

let expect st tok =
  if peek st = tok then advance st
  else fail st (Format.asprintf "expected '%a' but found '%a'" Token.pp tok Token.pp (peek st))

let expect_ident st =
  match peek st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> fail st (Format.asprintf "expected an identifier but found '%a'" Token.pp t)

let accept st tok =
  if peek st = tok then (
    advance st;
    true)
  else false

let parse_type st =
  match peek st with
  | Token.TINTEGER -> advance st; Value.Tint
  | Token.TBOOLEAN -> advance st; Value.Tbool
  | Token.TSTRING -> advance st; Value.Tstring
  | Token.TFLOAT -> advance st; Value.Tfloat
  | Token.IDENT c -> advance st; Value.Tref (Name.Class.of_string c)
  | t -> fail st (Format.asprintf "expected a type but found '%a'" Token.pp t)

(* --- Expressions --- *)

let rec parse_expr_prec st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st Token.OR then Ast.Binop (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept st Token.AND then Ast.Binop (Ast.And, lhs, parse_and st) else lhs

and parse_not st =
  if accept st Token.NOT then Ast.Unop (Ast.Not, parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, parse_add st)

and parse_add st =
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
        advance st;
        go (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Token.MINUS ->
        advance st;
        go (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Token.STAR ->
        advance st;
        go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH ->
        advance st;
        go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Token.PERCENT ->
        advance st;
        go (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  if accept st Token.MINUS then Ast.Unop (Ast.Neg, parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Token.INT n -> advance st; Ast.Lit (Value.Vint n)
  | Token.FLOAT f -> advance st; Ast.Lit (Value.Vfloat f)
  | Token.STRING s -> advance st; Ast.Lit (Value.Vstring s)
  | Token.TRUE -> advance st; Ast.Lit (Value.Vbool true)
  | Token.FALSE -> advance st; Ast.Lit (Value.Vbool false)
  | Token.NULL -> advance st; Ast.Lit Value.Vnull
  | Token.SELF -> advance st; Ast.Self
  | Token.NEW ->
      advance st;
      Ast.New (Name.Class.of_string (expect_ident st))
  | Token.IDENT x -> advance st; Ast.Ident x
  | Token.LPAREN ->
      advance st;
      let e = parse_expr_prec st in
      expect st Token.RPAREN;
      e
  | Token.SEND -> Ast.Send (parse_send st)
  | t -> fail st (Format.asprintf "expected an expression but found '%a'" Token.pp t)

(* --- Messages --- *)

and parse_send st =
  let send_pos = pos st in
  expect st Token.SEND;
  let first = expect_ident st in
  let prefix, name =
    if accept st Token.DOT then (Some (Name.Class.of_string first), expect_ident st)
    else (None, first)
  in
  let args =
    if accept st Token.LPAREN then
      if accept st Token.RPAREN then []
      else
        let rec go acc =
          let e = parse_expr_prec st in
          if accept st Token.COMMA then go (e :: acc)
          else (
            expect st Token.RPAREN;
            List.rev (e :: acc))
        in
        go []
    else []
  in
  expect st Token.TO;
  let recv = if accept st Token.SELF then Ast.Rself else Ast.Rexpr (parse_expr_prec st) in
  { Ast.msg_prefix = prefix; msg_name = Name.Method.of_string name; msg_args = args;
    msg_recv = recv; msg_pos = Some send_pos }

(* --- Statements --- *)

(* Every statement is wrapped in an [At] locator carrying the position of
   its first token, so downstream analyses can report [line:col]. *)
let rec parse_stmt st =
  let start = pos st in
  Ast.At (start, parse_stmt_bare st)

and parse_stmt_bare st =
  match peek st with
  | Token.IDENT x ->
      advance st;
      expect st Token.ASSIGN;
      let e = parse_expr_prec st in
      expect st Token.SEMI;
      Ast.Assign (x, e)
  | Token.VAR ->
      advance st;
      let x = expect_ident st in
      expect st Token.ASSIGN;
      let e = parse_expr_prec st in
      expect st Token.SEMI;
      Ast.Var (x, e)
  | Token.SEND ->
      let m = parse_send st in
      expect st Token.SEMI;
      Ast.Send_stmt m
  | Token.IF ->
      advance st;
      let cond = parse_expr_prec st in
      expect st Token.THEN;
      let then_ = parse_stmts st in
      let else_ = if accept st Token.ELSE then parse_stmts st else [] in
      expect st Token.END;
      ignore (accept st Token.SEMI);
      Ast.If (cond, then_, else_)
  | Token.WHILE ->
      advance st;
      let cond = parse_expr_prec st in
      expect st Token.DO;
      let body = parse_stmts st in
      expect st Token.END;
      ignore (accept st Token.SEMI);
      Ast.While (cond, body)
  | Token.RETURN ->
      advance st;
      let e = parse_expr_prec st in
      expect st Token.SEMI;
      Ast.Return e
  | t -> fail st (Format.asprintf "expected a statement but found '%a'" Token.pp t)

and parse_stmts st =
  let rec go acc =
    match peek st with
    | Token.END | Token.ELSE | Token.EOF -> List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

(* --- Classes --- *)

let parse_method st =
  expect st Token.METHOD;
  let name = expect_ident st in
  let params =
    if accept st Token.LPAREN then
      if accept st Token.RPAREN then []
      else
        let rec go acc =
          let p = expect_ident st in
          if accept st Token.COMMA then go (p :: acc)
          else (
            expect st Token.RPAREN;
            List.rev (p :: acc))
        in
        go []
    else []
  in
  expect st Token.IS;
  let body = parse_stmts st in
  expect st Token.END;
  { Schema.m_name = Name.Method.of_string name; m_params = params; m_body = body }

let parse_class st =
  expect st Token.CLASS;
  let name = expect_ident st in
  let parents =
    if accept st Token.EXTENDS then
      let rec go acc =
        let p = expect_ident st in
        if accept st Token.COMMA then go (p :: acc) else List.rev (p :: acc)
      in
      List.map Name.Class.of_string (go [])
    else []
  in
  expect st Token.IS;
  let fields =
    if accept st Token.FIELDS then
      let rec go acc =
        match peek st with
        | Token.IDENT f ->
            advance st;
            expect st Token.COLON;
            let ty = parse_type st in
            expect st Token.SEMI;
            go ((Name.Field.of_string f, ty) :: acc)
        | _ -> List.rev acc
      in
      go []
    else []
  in
  let rec methods acc =
    if peek st = Token.METHOD then methods (parse_method st :: acc) else List.rev acc
  in
  let ms = methods [] in
  expect st Token.END;
  { Schema.c_name = Name.Class.of_string name; c_parents = parents; c_fields = fields; c_methods = ms }

let make_state src = { toks = Array.of_list (Lexer.tokenize src); i = 0 }

let parse_decls src =
  let st = make_state src in
  let rec go acc =
    match peek st with
    | Token.EOF -> List.rev acc
    | Token.CLASS -> go (parse_class st :: acc)
    | t -> fail st (Format.asprintf "expected 'class' but found '%a'" Token.pp t)
  in
  go []

let parse_body src =
  let st = make_state src in
  let b = parse_stmts st in
  expect st Token.EOF;
  b

let parse_expr src =
  let st = make_state src in
  let e = parse_expr_prec st in
  expect st Token.EOF;
  e
