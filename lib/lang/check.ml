open Tavcc_model
module CN = Name.Class
module MN = Name.Method
module FN = Name.Field

type error = {
  ce_class : CN.t;
  ce_method : MN.t option;
  ce_msg : string;
  ce_pos : Token.pos option;
}

let pp_error ppf e =
  (match e.ce_pos with
  | Some p -> Format.fprintf ppf "%d:%d: " p.Token.line p.Token.col
  | None -> ());
  match e.ce_method with
  | Some m -> Format.fprintf ppf "%a.%a: %s" CN.pp e.ce_class MN.pp m e.ce_msg
  | None -> Format.fprintf ppf "%a: %s" CN.pp e.ce_class e.ce_msg

(* Inferred types: [Any] when the type is statically unknown (parameters,
   message results, null). *)
type ity = Any | Known of Value.ty

let ity_of_value = function
  | Value.Vint _ -> Known Value.Tint
  | Value.Vbool _ -> Known Value.Tbool
  | Value.Vstring _ -> Known Value.Tstring
  | Value.Vfloat _ -> Known Value.Tfloat
  | Value.Vref _ | Value.Vnull -> Any

let pp_ity ppf = function
  | Any -> Format.pp_print_string ppf "<any>"
  | Known ty -> Value.pp_ty ppf ty

(* What an identifier resolves to in the current scope. *)
type binding = Bfield of Schema.field_def | Bparam | Blocal of ity

type ctx = {
  schema : Ast.body Schema.t;
  cls : CN.t;
  meth : MN.t;
  mutable scope : (string * binding) list;  (* innermost first *)
  mutable pos : Token.pos option;  (* position of the enclosing statement *)
  mutable errors : error list;
}

let err ctx fmt =
  Format.kasprintf
    (fun msg ->
      ctx.errors <-
        { ce_class = ctx.cls; ce_method = Some ctx.meth; ce_msg = msg; ce_pos = ctx.pos }
        :: ctx.errors)
    fmt

let lookup ctx x =
  match List.assoc_opt x ctx.scope with
  | Some b -> Some b
  | None -> (
      match Schema.field_def ctx.schema ctx.cls (FN.of_string x) with
      | Some fd -> Some (Bfield fd)
      | None -> None)

let compatible a b =
  match (a, b) with Any, _ | _, Any -> true | Known x, Known y -> Value.equal_ty x y

let rec infer ctx e =
  match e with
  | Ast.Lit v -> ity_of_value v
  | Ast.Self -> Known (Value.Tref ctx.cls)
  | Ast.New c ->
      if not (Schema.mem ctx.schema c) then err ctx "new %a: unknown class" CN.pp c;
      Known (Value.Tref c)
  | Ast.Ident x -> (
      match lookup ctx x with
      | Some (Bfield fd) -> Known fd.Schema.f_ty
      | Some Bparam -> Any
      | Some (Blocal ty) -> ty
      | None ->
          err ctx "unknown identifier '%s'" x;
          Any)
  | Ast.Unop (Ast.Neg, e1) -> (
      match infer ctx e1 with
      | Known Value.Tint -> Known Value.Tint
      | Known Value.Tfloat -> Known Value.Tfloat
      | Any -> Any
      | Known ty ->
          err ctx "operator '-' applied to %a" Value.pp_ty ty;
          Any)
  | Ast.Unop (Ast.Not, e1) -> (
      match infer ctx e1 with
      | Known Value.Tbool | Any -> Known Value.Tbool
      | Known ty ->
          err ctx "operator 'not' applied to %a" Value.pp_ty ty;
          Known Value.Tbool)
  | Ast.Binop (op, l, r) -> infer_binop ctx op l r
  | Ast.Send m -> check_msg ctx m

and infer_binop ctx op l r =
  let tl = infer ctx l in
  let tr = infer ctx r in
  let numeric = function Known Value.Tint | Known Value.Tfloat | Any -> true | _ -> false in
  let booly = function Known Value.Tbool | Any -> true | _ -> false in
  let bad () =
    err ctx "operator '%a' applied to %a and %a" Ast.pp_binop op pp_ity tl pp_ity tr
  in
  match op with
  | Ast.Add ->
      (* Arithmetic addition or string concatenation. *)
      if (numeric tl && numeric tr) || (compatible tl (Known Value.Tstring) && compatible tr (Known Value.Tstring))
      then (match (tl, tr) with Known t, _ -> Known t | _, Known t -> Known t | _ -> Any)
      else (
        bad ();
        Any)
  | Ast.Sub | Ast.Mul | Ast.Div ->
      if numeric tl && numeric tr && compatible tl tr then
        match (tl, tr) with Known t, _ -> Known t | _, Known t -> Known t | _ -> Any
      else (
        bad ();
        Any)
  | Ast.Mod ->
      if compatible tl (Known Value.Tint) && compatible tr (Known Value.Tint) then Known Value.Tint
      else (
        bad ();
        Known Value.Tint)
  | Ast.Eq | Ast.Ne ->
      if compatible tl tr then Known Value.Tbool
      else (
        bad ();
        Known Value.Tbool)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let ordered = function
        | Known (Value.Tint | Value.Tfloat | Value.Tstring) | Any -> true
        | _ -> false
      in
      if ordered tl && ordered tr && compatible tl tr then Known Value.Tbool
      else (
        bad ();
        Known Value.Tbool)
  | Ast.And | Ast.Or ->
      if booly tl && booly tr then Known Value.Tbool
      else (
        bad ();
        Known Value.Tbool)

(* Checks a message and returns the (unknown) type of its result. *)
and check_msg ctx m =
  List.iter (fun a -> ignore (infer ctx a)) m.Ast.msg_args;
  let arity_check target_cls resolved =
    match resolved with
    | None ->
        err ctx "class %a does not understand message %a" CN.pp target_cls MN.pp m.Ast.msg_name
    | Some (_, (md : Ast.body Schema.method_def)) ->
        let expected = List.length md.Schema.m_params in
        let given = List.length m.Ast.msg_args in
        if expected <> given then
          err ctx "message %a expects %d argument(s) but receives %d" MN.pp m.Ast.msg_name
            expected given
  in
  (match (m.Ast.msg_prefix, m.Ast.msg_recv) with
  | Some c', Ast.Rself ->
      if not (Schema.mem ctx.schema c') then
        err ctx "prefixed send to unknown class %a" CN.pp c'
      else if not (List.exists (CN.equal c') (Schema.ancestors ctx.schema ctx.cls)) then
        err ctx "prefixed send %a.%a: %a is not an ancestor of %a" CN.pp c' MN.pp m.Ast.msg_name
          CN.pp c' CN.pp ctx.cls
      else arity_check c' (Schema.resolve_from ctx.schema c' m.Ast.msg_name)
  | Some _, Ast.Rexpr _ -> err ctx "prefixed sends may only target self"
  | None, Ast.Rself -> arity_check ctx.cls (Schema.resolve ctx.schema ctx.cls m.Ast.msg_name)
  | None, Ast.Rexpr e -> (
      match infer ctx e with
      | Known (Value.Tref d) -> arity_check d (Schema.resolve ctx.schema d m.Ast.msg_name)
      | Known ty -> err ctx "message sent to a value of base type %a" Value.pp_ty ty
      | Any -> (* dynamically checked *) ()));
  Any

let rec check_stmt ctx s =
  match s with
  | Ast.At (p, s) ->
      ctx.pos <- Some p;
      check_stmt ctx s
  | Ast.Assign (x, e) -> (
      let te = infer ctx e in
      match lookup ctx x with
      | Some (Bfield fd) ->
          if not (compatible te (Known fd.Schema.f_ty)) then
            err ctx "field %s of type %a assigned a value of type %a" x Value.pp_ty
              fd.Schema.f_ty pp_ity te
      | Some Bparam -> err ctx "cannot assign to parameter '%s'" x
      | Some (Blocal tl) ->
          if not (compatible te tl) then
            err ctx "local %s of type %a assigned a value of type %a" x pp_ity tl pp_ity te
      | None -> err ctx "assignment to unknown identifier '%s'" x)
  | Ast.Var (x, e) ->
      let te = infer ctx e in
      if List.exists (fun (y, b) -> String.equal x y && match b with Blocal _ -> true | _ -> false) ctx.scope
      then err ctx "local '%s' is declared twice" x;
      ctx.scope <- (x, Blocal te) :: ctx.scope
  | Ast.Send_stmt m -> ignore (check_msg ctx m)
  | Ast.Return e -> ignore (infer ctx e)
  | Ast.If (c, t, e) ->
      require_bool ctx c;
      check_block ctx t;
      check_block ctx e
  | Ast.While (c, b) ->
      require_bool ctx c;
      check_block ctx b

and require_bool ctx c =
  match infer ctx c with
  | Known Value.Tbool | Any -> ()
  | Known ty -> err ctx "condition of type %a (expected boolean)" Value.pp_ty ty

and check_block ctx stmts =
  (* Locals declared inside a block do not escape it. *)
  let saved = ctx.scope in
  List.iter (check_stmt ctx) stmts;
  ctx.scope <- saved

let check_method schema cls (md : Ast.body Schema.method_def) =
  let ctx =
    {
      schema;
      cls;
      meth = md.Schema.m_name;
      scope = List.map (fun p -> (p, Bparam)) md.Schema.m_params;
      pos = None;
      errors = [];
    }
  in
  let dup =
    let rec find_dup = function
      | [] -> None
      | p :: tl -> if List.mem p tl then Some p else find_dup tl
    in
    find_dup md.Schema.m_params
  in
  (match dup with Some p -> err ctx "duplicate parameter '%s'" p | None -> ());
  check_block ctx md.Schema.m_body;
  List.rev ctx.errors

let check schema =
  let errors =
    List.concat_map
      (fun cls ->
        List.concat_map (check_method schema cls) (Schema.own_methods schema cls))
      (Schema.classes schema)
  in
  match errors with [] -> Ok () | _ -> Error errors
