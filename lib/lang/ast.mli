(** Abstract syntax of ODML, the object-database method language.

    Following sec. 2.2 of the paper, a method body is a sequence of
    assignments, expressions and messages; control structures ([if],
    [while]) are present in the language but deliberately ignored by the
    access-vector analysis, which merges all execution paths.

    Messages come in two forms: the simple form [send M(args) to recv] and
    the prefixed form [send C.M(args) to self], used when an overriding
    method extends the method it replaces. *)

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Lit of Tavcc_model.Value.t
  | Ident of string
      (** a field of the receiver, a parameter, or a local variable;
          resolved lexically (locals shadow parameters shadow fields) *)
  | Self
  | New of Tavcc_model.Name.Class.t  (** create a fresh instance *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Send of msg  (** message whose result is used as a value *)

and msg = {
  msg_prefix : Tavcc_model.Name.Class.t option;
      (** [Some c] for the prefixed form [send c.M to self] *)
  msg_name : Tavcc_model.Name.Method.t;
  msg_args : expr list;
  msg_recv : recv;
  msg_pos : Token.pos option;
      (** source position of the [send] keyword; [None] for synthesised
          ASTs.  Ignored by {!equal_msg}. *)
}

and recv = Rself | Rexpr of expr

type stmt =
  | Assign of string * expr  (** [x := e] where [x] is a field or local *)
  | Var of string * expr  (** [var x := e] declares a local *)
  | Send_stmt of msg
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr
  | At of Token.pos * stmt
      (** source locator: the parser wraps every statement it produces in
          [At], recording the position of its first token.  [At] is
          semantically transparent — equality, pretty-printing, the
          interpreter and the access-vector analysis all look through it;
          only diagnostics read the position. *)

type body = stmt list

val stmt_pos : stmt -> Token.pos option
(** The statement's own position: its [At] locator if present, else the
    message position of a bare [Send_stmt]. *)

val strip_stmt : stmt -> stmt
val strip_body : body -> body
(** Recursively removes every [At] locator (message positions are kept —
    they are ignored by comparisons anyway). *)

val pp_unop : Format.formatter -> unop -> unit
val pp_binop : Format.formatter -> binop -> unit

val equal_expr : expr -> expr -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_body : body -> body -> bool

val fold_exprs : ('acc -> expr -> 'acc) -> 'acc -> body -> 'acc
(** Folds over every expression of the body, including nested
    sub-expressions, in source order. *)

val fold_msgs : ('acc -> msg -> 'acc) -> 'acc -> body -> 'acc
(** Folds over every message of the body (statements and expressions),
    including messages nested inside arguments. *)
