open Tavcc_model
module CN = Name.Class
module MN = Name.Method
module FN = Name.Field

type hooks = {
  h_top_send : Oid.t -> CN.t -> MN.t -> unit;
  h_self_send : Oid.t -> CN.t -> MN.t -> unit;
  h_read : Oid.t -> CN.t -> FN.t -> unit;
  h_write : Oid.t -> CN.t -> FN.t -> old:Value.t -> Value.t -> unit;
  h_new : Oid.t -> CN.t -> unit;
  h_enter : Oid.t -> CN.t -> resolve_at:CN.t -> defining:CN.t -> MN.t -> unit;
  h_exit : Oid.t -> CN.t -> MN.t -> unit;
  h_read_value : (Oid.t -> CN.t -> FN.t -> Value.t) option;
  h_write_value : (Oid.t -> CN.t -> FN.t -> old:Value.t -> Value.t -> bool) option;
}

let no_hooks =
  {
    h_top_send = (fun _ _ _ -> ());
    h_self_send = (fun _ _ _ -> ());
    h_read = (fun _ _ _ -> ());
    h_write = (fun _ _ _ ~old:_ _ -> ());
    h_new = (fun _ _ -> ());
    h_enter = (fun _ _ ~resolve_at:_ ~defining:_ _ -> ());
    h_exit = (fun _ _ _ -> ());
    h_read_value = None;
    h_write_value = None;
  }

exception Runtime_error of string

let error fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* Non-escaping control-flow exception for [return]. *)
exception Return_value of Value.t

type frame = {
  self : Oid.t;
  cls : CN.t;  (* proper class of [self] *)
  params : (string * Value.t) list;
  mutable locals : (string * Value.t ref) list;  (* innermost first *)
}

type env = { store : Ast.body Store.t; hooks : hooks; mutable fuel : int }

let burn env =
  if env.fuel <= 0 then error "step limit exceeded (runaway loop?)";
  env.fuel <- env.fuel - 1

let rec eval env frame e =
  burn env;
  match e with
  | Ast.Lit v -> v
  | Ast.Self -> Value.Vref frame.self
  | Ast.New c ->
      if not (Schema.mem (Store.schema env.store) c) then error "new %a: unknown class" CN.pp c;
      let oid = Store.new_instance env.store c in
      env.hooks.h_new oid c;
      Value.Vref oid
  | Ast.Ident x -> (
      match List.assoc_opt x frame.locals with
      | Some r -> !r
      | None -> (
          match List.assoc_opt x frame.params with
          | Some v -> v
          | None ->
              let f = FN.of_string x in
              let schema = Store.schema env.store in
              if Schema.field_index schema frame.cls f = None then
                error "unknown identifier '%s' in class %a" x CN.pp frame.cls;
              env.hooks.h_read frame.self frame.cls f;
              (match env.hooks.h_read_value with
              | Some rv -> rv frame.self frame.cls f
              | None -> Store.read env.store frame.self f)))
  | Ast.Unop (op, e1) -> eval_unop op (eval env frame e1)
  | Ast.Binop (Ast.And, l, r) ->
      if Value.truthy (eval env frame l) then
        Value.Vbool (Value.truthy (eval env frame r))
      else Value.Vbool false
  | Ast.Binop (Ast.Or, l, r) ->
      if Value.truthy (eval env frame l) then Value.Vbool true
      else Value.Vbool (Value.truthy (eval env frame r))
  | Ast.Binop (op, l, r) ->
      let vl = eval env frame l in
      let vr = eval env frame r in
      eval_binop op vl vr
  | Ast.Send m -> eval_msg env frame m

and eval_unop op v =
  match (op, v) with
  | Ast.Neg, Value.Vint i -> Value.Vint (-i)
  | Ast.Neg, Value.Vfloat f -> Value.Vfloat (-.f)
  | Ast.Neg, v -> error "operator '-' applied to %a" Value.pp v
  | Ast.Not, v -> Value.Vbool (not (Value.truthy v))

and eval_binop op vl vr =
  let arith fi ff =
    match (vl, vr) with
    | Value.Vint a, Value.Vint b -> Value.Vint (fi a b)
    | Value.Vfloat a, Value.Vfloat b -> Value.Vfloat (ff a b)
    | Value.Vint a, Value.Vfloat b -> Value.Vfloat (ff (float_of_int a) b)
    | Value.Vfloat a, Value.Vint b -> Value.Vfloat (ff a (float_of_int b))
    | _ -> error "operator '%a' applied to %a and %a" Ast.pp_binop op Value.pp vl Value.pp vr
  in
  let compare_vals () =
    match (vl, vr) with
    | (Value.Vint _ | Value.Vfloat _), (Value.Vint _ | Value.Vfloat _) ->
        let f = function Value.Vint i -> float_of_int i | Value.Vfloat f -> f | _ -> assert false in
        Float.compare (f vl) (f vr)
    | Value.Vstring a, Value.Vstring b -> String.compare a b
    | _ -> error "operator '%a' applied to %a and %a" Ast.pp_binop op Value.pp vl Value.pp vr
  in
  match op with
  | Ast.Add -> (
      match (vl, vr) with
      | Value.Vstring a, Value.Vstring b -> Value.Vstring (a ^ b)
      | _ -> arith ( + ) ( +. ))
  | Ast.Sub -> arith ( - ) ( -. )
  | Ast.Mul -> arith ( * ) ( *. )
  | Ast.Div -> (
      match (vl, vr) with
      | _, Value.Vint 0 -> error "division by zero"
      | _ -> arith ( / ) ( /. ))
  | Ast.Mod -> (
      match (vl, vr) with
      | Value.Vint _, Value.Vint 0 -> error "modulo by zero"
      | Value.Vint a, Value.Vint b -> Value.Vint (a mod b)
      | _ -> error "operator '%%' applied to %a and %a" Value.pp vl Value.pp vr)
  | Ast.Eq -> Value.Vbool (Value.equal vl vr)
  | Ast.Ne -> Value.Vbool (not (Value.equal vl vr))
  | Ast.Lt -> Value.Vbool (compare_vals () < 0)
  | Ast.Le -> Value.Vbool (compare_vals () <= 0)
  | Ast.Gt -> Value.Vbool (compare_vals () > 0)
  | Ast.Ge -> Value.Vbool (compare_vals () >= 0)
  | Ast.And | Ast.Or -> assert false (* short-circuited in [eval] *)

and eval_msg env frame m =
  let args = List.map (eval env frame) m.Ast.msg_args in
  match (m.Ast.msg_prefix, m.Ast.msg_recv) with
  | Some c', Ast.Rself ->
      (* Prefixed self-call: resolution starts at the named ancestor. *)
      env.hooks.h_self_send frame.self frame.cls m.Ast.msg_name;
      run_method env frame.self frame.cls ~resolve_at:c' m.Ast.msg_name args
  | Some _, Ast.Rexpr _ -> error "prefixed sends may only target self"
  | None, Ast.Rself ->
      env.hooks.h_self_send frame.self frame.cls m.Ast.msg_name;
      run_method env frame.self frame.cls ~resolve_at:frame.cls m.Ast.msg_name args
  | None, Ast.Rexpr e -> (
      match eval env frame e with
      | Value.Vref oid when Oid.equal oid frame.self ->
          (* A message explicitly sent to an expression equal to self is
             still a self-directed access for concurrency purposes. *)
          env.hooks.h_self_send frame.self frame.cls m.Ast.msg_name;
          run_method env frame.self frame.cls ~resolve_at:frame.cls m.Ast.msg_name args
      | Value.Vref oid ->
          let cls = Store.class_of env.store oid in
          env.hooks.h_top_send oid cls m.Ast.msg_name;
          run_method env oid cls ~resolve_at:cls m.Ast.msg_name args
      | Value.Vnull -> error "message %a sent to null" MN.pp m.Ast.msg_name
      | v -> error "message %a sent to base value %a" MN.pp m.Ast.msg_name Value.pp v)

and run_method env self cls ~resolve_at name args =
  let schema = Store.schema env.store in
  match Schema.resolve_from schema resolve_at name with
  | None -> error "class %a does not understand message %a" CN.pp resolve_at MN.pp name
  | Some (defining, md) ->
      let expected = List.length md.Schema.m_params in
      if expected <> List.length args then
        error "message %a expects %d argument(s) but received %d" MN.pp name expected
          (List.length args);
      let frame = { self; cls; params = List.combine md.Schema.m_params args; locals = [] } in
      env.hooks.h_enter self cls ~resolve_at ~defining name;
      (* [h_exit] must also fire when the body raises (a runtime error, or
         an abort injected through a blocking lock hook), so recorder
         call-stacks unwind in step with the interpreter's. *)
      Fun.protect
        ~finally:(fun () -> env.hooks.h_exit self cls name)
        (fun () -> exec_body env frame md.Schema.m_body)

and exec_body env frame body =
  try
    List.iter (exec_stmt env frame) body;
    Value.Vnull
  with Return_value v -> v

and exec_stmt env frame s =
  burn env;
  match s with
  | Ast.At (_, s) -> exec_stmt env frame s
  | Ast.Assign (x, e) -> (
      let v = eval env frame e in
      match List.assoc_opt x frame.locals with
      | Some r -> r := v
      | None ->
          if List.mem_assoc x frame.params then error "cannot assign to parameter '%s'" x;
          let f = FN.of_string x in
          let schema = Store.schema env.store in
          if Schema.field_index schema frame.cls f = None then
            error "assignment to unknown identifier '%s' in class %a" x CN.pp frame.cls;
          let old =
            match env.hooks.h_read_value with
            | Some rv -> rv frame.self frame.cls f
            | None -> Store.read env.store frame.self f
          in
          let absorbed =
            match env.hooks.h_write_value with
            | Some wv -> wv frame.self frame.cls f ~old v
            | None -> false
          in
          if not absorbed then begin
            env.hooks.h_write frame.self frame.cls f ~old v;
            Store.write env.store frame.self f v
          end)
  | Ast.Var (x, e) ->
      let v = eval env frame e in
      frame.locals <- (x, ref v) :: frame.locals
  | Ast.Send_stmt m -> ignore (eval_msg env frame m)
  | Ast.Return e -> raise (Return_value (eval env frame e))
  | Ast.If (c, t, f) ->
      let branch = if Value.truthy (eval env frame c) then t else f in
      exec_block env frame branch
  | Ast.While (c, b) ->
      while Value.truthy (eval env frame c) do
        exec_block env frame b
      done

and exec_block env frame stmts =
  (* Locals declared inside a block do not escape it. *)
  let saved = frame.locals in
  List.iter (exec_stmt env frame) stmts;
  frame.locals <- saved

let call ?(hooks = no_hooks) ?(max_steps = 1_000_000) store oid name args =
  let env = { store; hooks; fuel = max_steps } in
  let cls = Store.class_of store oid in
  hooks.h_top_send oid cls name;
  run_method env oid cls ~resolve_at:cls name args
