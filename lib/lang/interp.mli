(** Tree-walking interpreter for ODML methods.

    Execution is observable through {!hooks}: concurrency-control schemes
    plug themselves in at message sends and field accesses, and the
    serializability oracle records the raw read/write trace.  Hooks run
    {e before} the corresponding action takes effect, so a hook that blocks
    (e.g. waiting for a lock inside a simulation fiber) delays the action,
    and a hook that raises cancels it. *)

open Tavcc_model

type hooks = {
  h_top_send : Oid.t -> Name.Class.t -> Name.Method.t -> unit;
      (** a message arriving at an instance from outside it: the initial
          call and every cross-object send.  The class is the instance's
          proper class. *)
  h_self_send : Oid.t -> Name.Class.t -> Name.Method.t -> unit;
      (** a self-directed message (simple or prefixed form) *)
  h_read : Oid.t -> Name.Class.t -> Name.Field.t -> unit;
  h_write : Oid.t -> Name.Class.t -> Name.Field.t -> old:Value.t -> Value.t -> unit;
  h_new : Oid.t -> Name.Class.t -> unit;
  h_enter :
    Oid.t -> Name.Class.t -> resolve_at:Name.Class.t -> defining:Name.Class.t ->
    Name.Method.t -> unit;
      (** a method body is about to execute: the receiver, its proper
          class, the class resolution started from ([resolve_at] — the
          proper class, or the named ancestor of a prefixed self-send),
          the defining site's class, and the method.  Fires after the
          corresponding send hook, before the first statement. *)
  h_exit : Oid.t -> Name.Class.t -> Name.Method.t -> unit;
      (** the frame opened by the matching {!h_enter} is gone — fires on
          normal return {e and} when the body unwinds on an exception, so
          observers can mirror the call stack exactly. *)
  h_read_value : (Oid.t -> Name.Class.t -> Name.Field.t -> Value.t) option;
      (** when set, replaces {!Store.read} as the source of field values —
          both for [Ident] reads and for the old-image of an assignment.
          The multi-version executor resolves reads against a snapshot
          here.  [h_read] still fires first. *)
  h_write_value :
    (Oid.t -> Name.Class.t -> Name.Field.t -> old:Value.t -> Value.t -> bool) option;
      (** when set, consulted before an assignment takes effect; returning
          [true] absorbs the write (the store is {e not} mutated and
          [h_write] does {e not} fire) — the optimistic executor buffers
          the value instead.  Returning [false] proceeds as usual. *)
}

val no_hooks : hooks

exception Runtime_error of string
(** Dynamic failure: doesNotUnderstand, arity mismatch, bad operand types,
    division by zero, message to null/base value, or step-limit overrun. *)

val call :
  ?hooks:hooks ->
  ?max_steps:int ->
  Ast.body Store.t ->
  Oid.t ->
  Name.Method.t ->
  Value.t list ->
  Value.t
(** [call store oid m args] sends message [m] to the instance [oid] and
    returns the method's result ([Vnull] when the body ends without
    [return]).  [max_steps] (default 1_000_000) bounds the number of
    statements and expressions evaluated, guarding against runaway loops.

    @raise Runtime_error on dynamic failure
    @raise Store.Unknown_oid if [oid] is not live *)
