open Tavcc_model

(* Precedence levels, used to parenthesise only where required:
   0 or, 1 and, 2 not, 3 comparison, 4 additive, 5 multiplicative,
   6 unary minus, 7 primary. *)
let prec_binop = function
  | Ast.Or -> 0
  | Ast.And -> 1
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 3
  | Ast.Add | Ast.Sub -> 4
  | Ast.Mul | Ast.Div | Ast.Mod -> 5

let rec pp_prec lvl ppf e =
  match e with
  | Ast.Lit v -> Value.pp ppf v
  | Ast.Ident x -> Format.pp_print_string ppf x
  | Ast.Self -> Format.pp_print_string ppf "self"
  | Ast.New c -> Format.fprintf ppf "new %a" Name.Class.pp c
  | Ast.Unop (Ast.Neg, e1) ->
      (* The operand prints at primary level: a nested negation rendered as
         [--x] would lex as a line comment. *)
      let doc ppf () = Format.fprintf ppf "-%a" (pp_prec 7) e1 in
      if lvl > 6 then Format.fprintf ppf "(%a)" doc () else doc ppf ()
  | Ast.Unop (Ast.Not, e1) ->
      let doc ppf () = Format.fprintf ppf "not %a" (pp_prec 2) e1 in
      if lvl > 2 then Format.fprintf ppf "(%a)" doc () else doc ppf ()
  | Ast.Binop (op, l, r) ->
      let p = prec_binop op in
      (* Binary operators associate to the left except the right-recursive
         [and]/[or]; printing left at [p] and right at [p+1] (or [p] for
         and/or) matches the parser. *)
      let pl, pr =
        match op with Ast.And | Ast.Or -> (p + 1, p) | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (p + 1, p + 1) | _ -> (p, p + 1)
      in
      let doc ppf () =
        Format.fprintf ppf "%a %a %a" (pp_prec pl) l Ast.pp_binop op (pp_prec pr) r
      in
      if lvl > p then Format.fprintf ppf "(%a)" doc () else doc ppf ()
  | Ast.Send m ->
      let doc ppf () = pp_msg ppf m in
      if lvl > 0 then Format.fprintf ppf "(%a)" doc () else doc ppf ()

and pp_msg ppf m =
  Format.fprintf ppf "send ";
  (match m.Ast.msg_prefix with
  | Some c -> Format.fprintf ppf "%a." Name.Class.pp c
  | None -> ());
  Name.Method.pp ppf m.Ast.msg_name;
  (match m.Ast.msg_args with
  | [] -> ()
  | args ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_prec 0))
        args);
  Format.fprintf ppf " to ";
  match m.Ast.msg_recv with
  | Ast.Rself -> Format.pp_print_string ppf "self"
  | Ast.Rexpr e -> pp_prec 7 ppf e

let pp_expr ppf e = pp_prec 0 ppf e

let rec pp_stmt_ind ind ppf s =
  let pad = String.make ind ' ' in
  match s with
  | Ast.At (_, s) -> pp_stmt_ind ind ppf s
  | Ast.Assign (x, e) -> Format.fprintf ppf "%s%s := %a;" pad x pp_expr e
  | Ast.Var (x, e) -> Format.fprintf ppf "%svar %s := %a;" pad x pp_expr e
  | Ast.Send_stmt m -> Format.fprintf ppf "%s%a;" pad pp_msg m
  | Ast.Return e -> Format.fprintf ppf "%sreturn %a;" pad pp_expr e
  | Ast.If (c, t, []) ->
      Format.fprintf ppf "%sif %a then@\n%a@\n%send" pad pp_expr c (pp_body_ind (ind + 2)) t pad
  | Ast.If (c, t, e) ->
      Format.fprintf ppf "%sif %a then@\n%a@\n%selse@\n%a@\n%send" pad pp_expr c
        (pp_body_ind (ind + 2))
        t pad
        (pp_body_ind (ind + 2))
        e pad
  | Ast.While (c, b) ->
      Format.fprintf ppf "%swhile %a do@\n%a@\n%send" pad pp_expr c (pp_body_ind (ind + 2)) b pad

and pp_body_ind ind ppf body =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline (pp_stmt_ind ind) ppf body

let pp_stmt ppf s = pp_stmt_ind 0 ppf s
let pp_body ppf b = pp_body_ind 0 ppf b

let pp_method ppf (md : Ast.body Schema.method_def) =
  Format.fprintf ppf "  method %a" Name.Method.pp md.Schema.m_name;
  (match md.Schema.m_params with
  | [] -> ()
  | ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_string)
        ps);
  Format.fprintf ppf " is@\n%a@\n  end" (pp_body_ind 4) md.Schema.m_body

let pp_class_decl ppf (d : Ast.body Schema.class_decl) =
  Format.fprintf ppf "class %a" Name.Class.pp d.Schema.c_name;
  (match d.Schema.c_parents with
  | [] -> ()
  | ps ->
      Format.fprintf ppf " extends %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Name.Class.pp)
        ps);
  Format.fprintf ppf " is@\n";
  (match d.Schema.c_fields with
  | [] -> ()
  | fs ->
      Format.fprintf ppf "  fields@\n";
      List.iter
        (fun (f, ty) -> Format.fprintf ppf "    %a : %a;@\n" Name.Field.pp f Value.pp_ty ty)
        fs);
  List.iter (fun md -> Format.fprintf ppf "%a@\n" pp_method md) d.Schema.c_methods;
  Format.fprintf ppf "end"

let pp_decls ppf ds =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n@\n")
    pp_class_decl ppf ds

let expr_to_string e = Format.asprintf "%a" pp_expr e
let body_to_string b = Format.asprintf "%a" pp_body b
let decls_to_string ds = Format.asprintf "%a@\n" pp_decls ds
