open Tavcc_model

type op =
  | Begin of int
  | Read of int * Oid.t * Name.Field.t
  | Write of int * Oid.t * Name.Field.t
  | Commit of int
  | Abort of int
  | Snapshot of int * int
  | Snapshot_read of int * Oid.t * Name.Field.t * int
  | Publish of int * int

let txn_of = function
  | Begin t | Read (t, _, _) | Write (t, _, _) | Commit t | Abort t
  | Snapshot (t, _) | Snapshot_read (t, _, _, _) | Publish (t, _) -> t

let pp_op ppf = function
  | Begin t -> Format.fprintf ppf "b%d" t
  | Read (t, o, f) -> Format.fprintf ppf "r%d[%a.%a]" t Oid.pp o Name.Field.pp f
  | Write (t, o, f) -> Format.fprintf ppf "w%d[%a.%a]" t Oid.pp o Name.Field.pp f
  | Commit t -> Format.fprintf ppf "c%d" t
  | Abort t -> Format.fprintf ppf "a%d" t
  | Snapshot (t, s) -> Format.fprintf ppf "s%d@%d" t s
  | Snapshot_read (t, o, f, v) ->
      Format.fprintf ppf "sr%d[%a.%a=v%d]" t Oid.pp o Name.Field.pp f v
  | Publish (t, ts) -> Format.fprintf ppf "p%d@%d" t ts

type t = { mutable ops : op list (* newest first *); mutable n : int }

let create () = { ops = []; n = 0 }

let record t op =
  t.ops <- op :: t.ops;
  t.n <- t.n + 1

let ops t = List.rev t.ops
let length t = t.n

let committed t =
  List.rev (List.filter_map (function Commit x -> Some x | _ -> None) t.ops)

let precedence_edges t =
  let committed = committed t in
  let committed_tbl = Hashtbl.create 64 in
  List.iter (fun x -> Hashtbl.replace committed_tbl x ()) committed;
  let is_committed x = Hashtbl.mem committed_tbl x in
  let arr = Array.of_list (ops t) in
  (* A transaction aborted by deadlock restarts under the same id; only the
     operations of its final (committed) incarnation — those after its last
     Abort record — take part in the conflict graph. *)
  let last_abort = Hashtbl.create 8 in
  Array.iteri
    (fun i op -> match op with Abort x -> Hashtbl.replace last_abort x i | _ -> ())
    arr;
  let live x i =
    match Hashtbl.find_opt last_abort x with None -> true | Some j -> i > j
  in
  (* Ops on distinct (oid, field) resources never conflict, so bucket the
     live committed accesses per resource and only pair within a bucket. *)
  let by_res : (Oid.t * Name.Field.t, (int * bool) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri
    (fun i op ->
      match op with
      | (Read (a, o, f) | Write (a, o, f)) when is_committed a && live a i ->
          let w = match op with Write _ -> true | _ -> false in
          let key = (o, f) in
          let cell =
            match Hashtbl.find_opt by_res key with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add by_res key c;
                c
          in
          cell := (a, w) :: !cell
      | _ -> ())
    arr;
  let seen = Hashtbl.create 256 in
  let edges = ref [] in
  let add a b =
    if a <> b && not (Hashtbl.mem seen (a, b)) then begin
      Hashtbl.replace seen (a, b) ();
      edges := (a, b) :: !edges
    end
  in
  Hashtbl.iter
    (fun _ cell ->
      let l = Array.of_list (List.rev !cell) in
      let n = Array.length l in
      for i = 0 to n - 1 do
        let a, a_writes = l.(i) in
        for j = i + 1 to n - 1 do
          let b, b_writes = l.(j) in
          if b <> a && (a_writes || b_writes) then add a b
        done
      done)
    by_res;
  (* Multi-version edges.  A snapshot read is not a temporal conflict — the
     reader saw the version published at [vts], whatever writers did since —
     so it takes part through the MVSG rule instead: the publisher of the
     version read precedes the reader, and the reader precedes every writer
     whose version was published after the reader's snapshot.  Writers
     without a [Publish] record (non-mvcc histories) contribute nothing. *)
  let publisher = Hashtbl.create 32 in (* commit ts -> txn *)
  let pub_ts = Hashtbl.create 32 in (* txn -> commit ts *)
  let snap_of = Hashtbl.create 32 in (* txn -> snapshot ts *)
  Array.iteri
    (fun i op ->
      match op with
      | Publish (x, ts) when is_committed x && live x i ->
          Hashtbl.replace publisher ts x;
          Hashtbl.replace pub_ts x ts
      | Snapshot (x, s) when is_committed x && live x i -> Hashtbl.replace snap_of x s
      | _ -> ())
    arr;
  Array.iteri
    (fun i op ->
      match op with
      | Snapshot_read (r, o, f, vts) when is_committed r && live r i ->
          (* vts = 0 is the pre-run base version: no publishing writer. *)
          (if vts > 0 then
             match Hashtbl.find_opt publisher vts with
             | Some w when w <> r -> add w r
             | _ -> ());
          let s = Option.value ~default:vts (Hashtbl.find_opt snap_of r) in
          (match Hashtbl.find_opt by_res (o, f) with
          | None -> ()
          | Some cell ->
              List.iter
                (fun (w', is_w) ->
                  if is_w && w' <> r then
                    match Hashtbl.find_opt pub_ts w' with
                    | Some ts when ts > s -> add r w'
                    | _ -> ())
                !cell)
      | _ -> ())
    arr;
  !edges

let topo_sort nodes edges =
  let adj = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
    edges;
  let succ v = Option.value ~default:[] (Hashtbl.find_opt adj v) in
  let temp = Hashtbl.create 16 in
  let perm = Hashtbl.create 16 in
  let order = ref [] in
  let exception Cycle in
  let rec visit v =
    if Hashtbl.mem perm v then ()
    else if Hashtbl.mem temp v then raise Cycle
    else begin
      Hashtbl.replace temp v ();
      List.iter visit (succ v);
      Hashtbl.remove temp v;
      Hashtbl.replace perm v ();
      order := v :: !order
    end
  in
  try
    List.iter visit nodes;
    Some !order
  with Cycle -> None

let equivalent_serial_order t = topo_sort (committed t) (precedence_edges t)
let conflict_serializable t = equivalent_serial_order t <> None

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    pp_op ppf (ops t)
