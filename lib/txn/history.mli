(** Recorded execution histories and the conflict-serializability oracle.

    Every scheme in the repository must produce serializable executions —
    they are all conservative (lock at or above field granularity, strict
    2PL).  The oracle checks this from first principles: it records the raw
    field-level reads and writes that actually executed and tests the
    committed projection for conflict serializability via the precedence
    graph.  Property tests drive random workloads through each scheme and
    assert the oracle. *)

open Tavcc_model

type op =
  | Begin of int
  | Read of int * Oid.t * Name.Field.t
  | Write of int * Oid.t * Name.Field.t
  | Commit of int
  | Abort of int
  | Snapshot of int * int
      (** [Snapshot (t, s)]: transaction [t] read from the consistent
          snapshot at commit timestamp [s] (mvcc schemes only) *)
  | Snapshot_read of int * Oid.t * Name.Field.t * int
      (** [Snapshot_read (t, o, f, vts)]: [t] read the version of [o.f]
          published at commit timestamp [vts] (0 = the pre-run base).
          Unlike {!Read}, this is not a temporal conflict: the oracle
          connects it through the multi-version serialization-graph rule —
          publisher([vts]) precedes [t], and [t] precedes every writer of
          [o.f] whose {!Publish} timestamp exceeds [t]'s snapshot. *)
  | Publish of int * int
      (** [Publish (t, ts)]: [t] committed its versions at timestamp [ts].
          Every committed mvcc writer must record one, or its conflicts
          with snapshot readers are invisible to the oracle. *)

val txn_of : op -> int
val pp_op : Format.formatter -> op -> unit

type t

val create : unit -> t
val record : t -> op -> unit
val ops : t -> op list
(** In execution order. *)

val length : t -> int
val committed : t -> int list
(** Transactions with a [Commit] record, in commit order. *)

val precedence_edges : t -> (int * int) list
(** Edges of the precedence (conflict) graph over committed transactions:
    [(a, b)] when some operation of [a] precedes and conflicts with (same
    oid and field, at least one write) an operation of [b].  Deduplicated. *)

val conflict_serializable : t -> bool
(** True iff the precedence graph is acyclic. *)

val equivalent_serial_order : t -> int list option
(** A topological order of the precedence graph when one exists. *)

val pp : Format.formatter -> t -> unit
