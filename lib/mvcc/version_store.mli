(** Per-field version chains with commit timestamps and bounded GC.

    The versioned store shadows the live {!Tavcc_model.Store}: every
    committed write of an mvcc transaction appends a version [(ts, value)]
    to the chain of its [(oid, field)] slot, and snapshot transactions
    resolve their reads against the newest version no younger than their
    snapshot timestamp, never touching locks.

    Timestamps come from a logical commit clock.  Publication, snapshot
    registration and the clock all serialize on one commit mutex, so a
    version is only ever appended with a timestamp strictly greater than
    every open snapshot's — a chain reader (which takes only its bucket
    mutex) either sees a fully published version or finds it invisible
    ([ts] beyond its snapshot); there is no torn state.

    Base versions (timestamp 0, the pre-run value) are captured lazily:
    the first writer of a slot installs one from the live value {e before}
    its in-place write, and a snapshot reader that finds an empty chain
    installs one from the live slot.  Both happen under the bucket mutex,
    so a reader can never observe a writer's half-done first update.

    Lock order: commit mutex, then bucket mutex.  Neither is ever held
    while calling out except to the [live] read closures. *)

open Tavcc_model

type t

val create : ?gc_keep:int -> ?metrics:Tavcc_obs.Metrics.t -> unit -> t
(** [gc_keep] (default 8) bounds each chain: once it grows past this many
    versions, versions superseded before the oldest open snapshot are
    pruned (always keeping one version at or below the watermark, so every
    snapshot still resolves).  [max_int] disables pruning. *)

val reset : t -> unit
(** Drop every chain and snapshot registration, rewind the clock to 0 —
    called at the start of each run. *)

val now : t -> int
(** Current value of the commit clock. *)

val begin_snapshot : t -> int
(** Register a snapshot at the current clock; reads at this timestamp stay
    resolvable until the matching {!end_snapshot}. *)

val end_snapshot : t -> int -> unit

val capture_base : t -> Oid.t -> Name.Field.t -> live:(Oid.t -> Name.Field.t -> Value.t) -> unit
(** Install the timestamp-0 base version from [live] if the slot has no
    chain yet.  Writers call this {e before} mutating the live slot. *)

val read_at :
  t -> Oid.t -> Name.Field.t -> ts:int -> live:(Oid.t -> Name.Field.t -> Value.t) -> int * Value.t
(** The newest version of the slot with timestamp [<= ts], as
    [(version ts, value)]; an empty chain captures the base version from
    [live] first (see module comment for why that read is safe). *)

val latest_ts : t -> Oid.t -> Name.Field.t -> int
(** Timestamp of the newest version; 0 when the slot has no chain (the
    live value is still the base version). *)

val publish :
  ?validate:(unit -> bool) ->
  ?on_ok:(unit -> unit) ->
  t ->
  (Oid.t * Name.Field.t * Value.t) list ->
  int option
(** Atomically (under the commit mutex): run [validate]; on [false]
    return [None] (counting a validation failure).  Otherwise run [on_ok]
    (the optimistic write-back — base capture + live store writes), append
    one version per entry at timestamp [clock + 1], bump the clock, and
    return [Some ts].  Exceptions from the callbacks release the mutex and
    propagate. *)

val dump : t -> (Oid.t * Name.Field.t * (int * Value.t) list) list
(** Every chain, versions newest first, in a deterministic slot order —
    the chaos harness's coherence oracle. *)
