open Tavcc_model
module Metrics = Tavcc_obs.Metrics

type version = { v_ts : int; v_value : Value.t }

type chain = {
  c_oid : Oid.t;
  c_field : Name.Field.t;
  mutable c_versions : version list;  (* newest first; never empty once created *)
}

type bucket = { b_mu : Mutex.t; b_chains : (int * string, chain) Hashtbl.t }

type t = {
  commit_mu : Mutex.t;
  mutable clock : int;  (* guarded by commit_mu *)
  snapshots : (int, int ref) Hashtbl.t;  (* ts -> refcount; guarded by commit_mu *)
  buckets : bucket array;
  gc_keep : int;
  n_versions : int Atomic.t;
  m_versions : Metrics.gauge option;
  m_snapshots : Metrics.gauge option;
  m_opened : Metrics.counter option;
  m_published : Metrics.counter option;
  m_pruned : Metrics.counter option;
  m_vfail : Metrics.counter option;
}

let n_buckets = 16

let create ?(gc_keep = 8) ?metrics () =
  let m f = Option.map f metrics in
  {
    commit_mu = Mutex.create ();
    clock = 0;
    snapshots = Hashtbl.create 16;
    buckets =
      Array.init n_buckets (fun _ -> { b_mu = Mutex.create (); b_chains = Hashtbl.create 64 });
    gc_keep = (if gc_keep < 1 then 1 else gc_keep);
    n_versions = Atomic.make 0;
    m_versions = m (fun r -> Metrics.gauge r "mvcc.versions");
    m_snapshots = m (fun r -> Metrics.gauge r "mvcc.active_snapshots");
    m_opened = m (fun r -> Metrics.counter r "mvcc.snapshots_opened");
    m_published = m (fun r -> Metrics.counter r "mvcc.versions_published");
    m_pruned = m (fun r -> Metrics.counter r "mvcc.versions_pruned");
    m_vfail = m (fun r -> Metrics.counter r "mvcc.validation_failures");
  }

let opt_incr = Option.iter Metrics.incr
let opt_add c n = Option.iter (fun c -> Metrics.add c n) c
let opt_set g v = Option.iter (fun g -> Metrics.set g v) g

let with_mu mu f =
  Mutex.lock mu;
  match f () with
  | r ->
      Mutex.unlock mu;
      r
  | exception e ->
      Mutex.unlock mu;
      raise e

let reset t =
  with_mu t.commit_mu (fun () ->
      t.clock <- 0;
      Hashtbl.reset t.snapshots;
      Array.iter (fun b -> with_mu b.b_mu (fun () -> Hashtbl.reset b.b_chains)) t.buckets;
      Atomic.set t.n_versions 0;
      opt_set t.m_versions 0;
      opt_set t.m_snapshots 0)

let now t = with_mu t.commit_mu (fun () -> t.clock)

let key oid f = (Oid.to_int oid, Name.Field.to_string f)

let bucket t oid =
  t.buckets.(Oid.hash oid land max_int mod n_buckets)

(* bucket mutex held *)
let chain_of b oid f =
  let k = key oid f in
  match Hashtbl.find_opt b.b_chains k with
  | Some c -> c
  | None ->
      let c = { c_oid = oid; c_field = f; c_versions = [] } in
      Hashtbl.add b.b_chains k c;
      c

(* bucket mutex held; install the ts-0 base from the live slot if the
   chain is empty.  Returns the (now non-empty) chain. *)
let ensure_base t b oid f ~live =
  let c = chain_of b oid f in
  if c.c_versions = [] then begin
    c.c_versions <- [ { v_ts = 0; v_value = live oid f } ];
    Atomic.incr t.n_versions
  end;
  c

let capture_base t oid f ~live =
  let b = bucket t oid in
  with_mu b.b_mu (fun () -> ignore (ensure_base t b oid f ~live));
  opt_set t.m_versions (Atomic.get t.n_versions)

let read_at t oid f ~ts ~live =
  let b = bucket t oid in
  with_mu b.b_mu (fun () ->
      let c = ensure_base t b oid f ~live in
      let rec visible = function
        | [ v ] -> v  (* oldest retained version: the floor GC keeps *)
        | v :: rest -> if v.v_ts <= ts then v else visible rest
        | [] -> assert false
      in
      let v = visible c.c_versions in
      (v.v_ts, v.v_value))

let latest_ts t oid f =
  let b = bucket t oid in
  with_mu b.b_mu (fun () ->
      match Hashtbl.find_opt b.b_chains (key oid f) with
      | Some { c_versions = v :: _; _ } -> v.v_ts
      | _ -> 0)

(* commit mutex held *)
let watermark t = Hashtbl.fold (fun ts _ acc -> min ts acc) t.snapshots t.clock

(* commit and bucket mutexes held *)
let prune t c ~wm =
  if List.length c.c_versions > t.gc_keep then begin
    (* keep everything a live snapshot could still need: versions above
       the watermark plus one floor at or below it *)
    let rec split kept = function
      | [] -> (kept, [])
      | v :: rest ->
          if v.v_ts > wm then split (v :: kept) rest else ((v :: kept), rest)
    in
    let kept_rev, dropped = split [] c.c_versions in
    let n = List.length dropped in
    if n > 0 then begin
      c.c_versions <- List.rev kept_rev;
      ignore (Atomic.fetch_and_add t.n_versions (-n));
      opt_add t.m_pruned n
    end
  end

let begin_snapshot t =
  let ts =
    with_mu t.commit_mu (fun () ->
        let ts = t.clock in
        (match Hashtbl.find_opt t.snapshots ts with
        | Some r -> incr r
        | None -> Hashtbl.add t.snapshots ts (ref 1));
        ts)
  in
  opt_incr t.m_opened;
  opt_set t.m_snapshots (Hashtbl.length t.snapshots);
  ts

let end_snapshot t ts =
  with_mu t.commit_mu (fun () ->
      match Hashtbl.find_opt t.snapshots ts with
      | Some r ->
          decr r;
          if !r <= 0 then Hashtbl.remove t.snapshots ts
      | None -> ());
  opt_set t.m_snapshots (Hashtbl.length t.snapshots)

let publish ?(validate = fun () -> true) ?(on_ok = fun () -> ()) t writes =
  let r =
    with_mu t.commit_mu (fun () ->
        if not (validate ()) then begin
          opt_incr t.m_vfail;
          None
        end
        else begin
          on_ok ();
          let ts = t.clock + 1 in
          let wm = watermark t in
          List.iter
            (fun (oid, f, v) ->
              let b = bucket t oid in
              with_mu b.b_mu (fun () ->
                  let c = chain_of b oid f in
                  c.c_versions <- { v_ts = ts; v_value = v } :: c.c_versions;
                  Atomic.incr t.n_versions;
                  if t.gc_keep < max_int then prune t c ~wm))
            writes;
          t.clock <- ts;
          Some ts
        end)
  in
  (match r with
  | Some _ ->
      opt_add t.m_published (List.length writes);
      opt_set t.m_versions (Atomic.get t.n_versions)
  | None -> ());
  r

let dump t =
  let all = ref [] in
  Array.iter
    (fun b ->
      with_mu b.b_mu (fun () ->
          Hashtbl.iter
            (fun _ c ->
              all :=
                (c.c_oid, c.c_field, List.map (fun v -> (v.v_ts, v.v_value)) c.c_versions)
                :: !all)
            b.b_chains))
    t.buckets;
  List.sort
    (fun (o1, f1, _) (o2, f2, _) ->
      match compare (Oid.to_int o1) (Oid.to_int o2) with
      | 0 -> String.compare (Name.Field.to_string f1) (Name.Field.to_string f2)
      | c -> c)
    !all
