open Tavcc_model
open Tavcc_lang
open Tavcc_core
open Tavcc_lock
open Tavcc_cc

type config = { gc_keep : int; contention : Contention.cfg }

let default_config = { gc_keep = 8; contention = Contention.default_cfg }

type handle = {
  h_scheme : Scheme.t;
  h_vstore : Version_store.t;
  h_contention : Contention.t;
}

let with_mu mu f =
  Mutex.lock mu;
  match f () with
  | r ->
      Mutex.unlock mu;
      r
  | exception e ->
      Mutex.unlock mu;
      raise e

(* --- snapshot eligibility ---

   A transaction may run lock-free on a snapshot only if nothing it can
   transitively execute writes a field, creates an instance, or sends to a
   statically unknown receiver.  TAV already closes field writes over the
   self-call closure; the classifier re-walks that closure for the other
   two conditions and recurses across statically-known cross-class sends,
   widened to the receiver's whole domain (the run-time receiver may be of
   any subclass).  Cycles in the cross-send graph are classified
   pessimistically — the memo must not record optimistic assumptions. *)

let classifier an =
  let schema = Analysis.schema an in
  let ex = Analysis.extraction an in
  let memo : (string * string, bool) Hashtbl.t = Hashtbl.create 64 in
  let in_progress : (string * string, unit) Hashtbl.t = Hashtbl.create 8 in
  let skey c m = (Name.Class.to_string c, Name.Method.to_string m) in
  let creates body =
    Ast.fold_exprs (fun acc e -> acc || match e with Ast.New _ -> true | _ -> false) false body
  in
  (* the (extraction-key, method) pairs whose defining sites execute when
     [m] runs on an instance of proper class [root]: simple self-sends
     re-resolve from [root], prefixed ones from the named ancestor *)
  let closure_sites root m =
    let seen = Hashtbl.create 8 in
    let rec go qcls m =
      if Schema.resolve_from schema qcls m <> None && not (Hashtbl.mem seen (skey qcls m))
      then begin
        Hashtbl.replace seen (skey qcls m) (qcls, m);
        Name.Method.Set.iter (fun m' -> go root m') (Extraction.dsc ex qcls m);
        Site.Set.iter (fun (c', m') -> go c' m') (Extraction.psc ex qcls m)
      end
    in
    go root m;
    Hashtbl.fold (fun _ site acc -> site :: acc) seen []
  in
  let rec read_only root m =
    let k = skey root m in
    match Hashtbl.find_opt memo k with
    | Some r -> r
    | None ->
        if Hashtbl.mem in_progress k then false
        else begin
          Hashtbl.replace in_progress k ();
          let site_ok (qcls, m') =
            (not (Extraction.has_dynamic_sends ex qcls m'))
            && (match Schema.resolve_from schema qcls m' with
               | Some (_, md) -> not (creates md.Schema.m_body)
               | None -> true)
            && List.for_all
                 (fun (c'', m'') ->
                   List.for_all
                     (fun d -> Schema.resolve schema d m'' = None || read_only d m'')
                     (Schema.domain schema c''))
                 (Extraction.cross_sends ex qcls m')
          in
          let r =
            Schema.resolve_from schema root m <> None
            && (not (Scheme.writes_transitively an root m))
            && List.for_all site_ok (closure_sites root m)
          in
          Hashtbl.remove in_progress k;
          (* a [false] propagated out of a cycle may be over-conservative
             for this particular root; only cache cycle-free verdicts *)
          if Hashtbl.length in_progress = 0 || r then Hashtbl.replace memo k r;
          r
        end
  in
  read_only

let read_only_method an cls m = (classifier an) cls m

(* --- per-attempt session state --- *)

type session_state = {
  st_mode : Scheme.txn_mode;
  st_snapshot : int;  (* meaningful for snapshot/optimistic modes *)
  st_roots : Oid.t list;
  st_reads : (int * string, Oid.t * Name.Field.t * int) Hashtbl.t;
  st_buf : (int * string, Value.t) Hashtbl.t;  (* optimistic write buffer *)
  mutable st_buf_order : (Oid.t * Name.Field.t) list;  (* first-write order, reversed *)
  mutable st_deferred : Lock_table.req list;  (* optimistic: reversed acquisition order *)
  st_wseen : (int * string, unit) Hashtbl.t;
  mutable st_wkeys : (Oid.t * Name.Field.t) list;  (* pessimistic write set, reversed *)
  mutable st_published : int option;
  mutable st_closed : bool;
}

let key oid f = (Oid.to_int oid, Name.Field.to_string f)

let make ?(config = default_config) ?metrics an =
  let tav = Tav_modes.scheme an in
  let vstore = Version_store.create ~gc_keep:config.gc_keep ?metrics () in
  let ctl = Contention.create ?metrics config.contention in
  let read_only = classifier an in
  let smu = Mutex.create () in
  let sessions : (int, session_state) Hashtbl.t = Hashtbl.create 64 in
  let session_of ctx =
    with_mu smu (fun () -> Hashtbl.find_opt sessions ctx.Scheme.txn.Tavcc_txn.Txn.id)
  in
  let on_top_send ctx oid cls m =
    match session_of ctx with
    | Some st when st.st_mode = Scheme.Mv_snapshot -> ()
    | Some st when st.st_mode = Scheme.Mv_optimistic ->
        (* record exactly the requests tav would issue; acquired at commit *)
        tav.Scheme.on_top_send
          { ctx with Scheme.acquire = (fun r -> st.st_deferred <- r :: st.st_deferred) }
          oid cls m
    | _ -> tav.Scheme.on_top_send ctx oid cls m
  in
  let mv_begin ctx ~read ~class_of actions =
    let id = ctx.Scheme.txn.Tavcc_txn.Txn.id in
    let roots = List.filter_map (function Action.Call (o, _, _) -> Some o | _ -> None) actions in
    let mode =
      let simple = List.for_all (function Action.Call _ -> true | _ -> false) actions in
      if simple && actions <> []
         && List.for_all
              (function Action.Call (o, m, _) -> read_only (class_of o) m | _ -> false)
              actions
      then Scheme.Mv_snapshot
      else if
        simple && roots <> [] && config.contention.enabled
        && List.for_all (Contention.optimistic ctl) roots
      then Scheme.Mv_optimistic
      else Scheme.Mv_pessimistic
    in
    let snapshot =
      match mode with
      | Scheme.Mv_snapshot | Scheme.Mv_optimistic -> Version_store.begin_snapshot vstore
      | Scheme.Mv_pessimistic -> 0
    in
    let st =
      {
        st_mode = mode;
        st_snapshot = snapshot;
        st_roots = roots;
        st_reads = Hashtbl.create 16;
        st_buf = Hashtbl.create 16;
        st_buf_order = [];
        st_deferred = [];
        st_wseen = Hashtbl.create 16;
        st_wkeys = [];
        st_published = None;
        st_closed = false;
      }
    in
    with_mu smu (fun () -> Hashtbl.replace sessions id st);
    let close () =
      if not st.st_closed then begin
        st.st_closed <- true;
        (match st.st_mode with
        | Scheme.Mv_snapshot | Scheme.Mv_optimistic ->
            Version_store.end_snapshot vstore st.st_snapshot
        | Scheme.Mv_pessimistic -> ());
        with_mu smu (fun () -> Hashtbl.remove sessions id)
      end
    in
    let ms_read oid f =
      match Hashtbl.find_opt st.st_buf (key oid f) with
      | Some v -> v  (* read-own-write: served from the buffer, not logged *)
      | None ->
          let vts, v = Version_store.read_at vstore oid f ~ts:st.st_snapshot ~live:read in
          let k = key oid f in
          if not (Hashtbl.mem st.st_reads k) then Hashtbl.replace st.st_reads k (oid, f, vts);
          v
    in
    let ms_write oid f ~before v =
      match st.st_mode with
      | Scheme.Mv_pessimistic ->
          (* first write of the run to this slot freezes the pre-run value
             as the base version, under the slot's bucket mutex, before
             the in-place store write happens *)
          Version_store.capture_base vstore oid f ~live:(fun _ _ -> before);
          let k = key oid f in
          if not (Hashtbl.mem st.st_wseen k) then begin
            Hashtbl.replace st.st_wseen k ();
            st.st_wkeys <- (oid, f) :: st.st_wkeys
          end;
          false
      | Scheme.Mv_optimistic ->
          let k = key oid f in
          if not (Hashtbl.mem st.st_buf k) then st.st_buf_order <- (oid, f) :: st.st_buf_order;
          Hashtbl.replace st.st_buf k v;
          true
      | Scheme.Mv_snapshot ->
          invalid_arg "mvcc-tav: field write in a snapshot-classified transaction"
    in
    let ms_precommit ctx ~write =
      match st.st_mode with
      | Scheme.Mv_pessimistic | Scheme.Mv_snapshot -> ()
      | Scheme.Mv_optimistic ->
          let writes =
            List.rev_map (fun (o, f) -> (o, f, Hashtbl.find st.st_buf (key o f))) st.st_buf_order
          in
          if writes <> [] then begin
            (* acquire the deferred TAV locks (first-need order, deduped);
               a conflict here queues or aborts exactly like an eager one *)
            let acquired = ref [] in
            List.iter
              (fun (r : Lock_table.req) ->
                let same (h : Lock_table.req) =
                  h.Lock_table.r_res = r.Lock_table.r_res
                  && h.r_mode = r.r_mode && h.r_hier = r.r_hier && h.r_pred = r.r_pred
                in
                if not (List.exists same !acquired) then begin
                  ctx.Scheme.acquire r;
                  acquired := r :: !acquired
                end)
              (List.rev st.st_deferred);
            let validate () =
              Hashtbl.fold
                (fun _ (o, f, _) ok ->
                  ok && Version_store.latest_ts vstore o f <= st.st_snapshot)
                st.st_reads true
            in
            let on_ok () =
              List.iter
                (fun (o, f, v) ->
                  Version_store.capture_base vstore o f ~live:read;
                  write o f v)
                writes
            in
            match Version_store.publish ~validate ~on_ok vstore writes with
            | Some ts -> st.st_published <- Some ts
            | None ->
                List.iter (Contention.note_occ_failure ctl) st.st_roots;
                raise Scheme.Validation_failed
          end
    in
    let ms_publish () =
      match st.st_mode with
      | Scheme.Mv_snapshot ->
          close ();
          None
      | Scheme.Mv_optimistic ->
          List.iter (Contention.note_occ_commit ctl) st.st_roots;
          close ();
          st.st_published
      | Scheme.Mv_pessimistic ->
          (* final values of the written slots, read in place while the
             strict-2PL locks are still held *)
          let writes = List.rev_map (fun (o, f) -> (o, f, read o f)) st.st_wkeys in
          let ts = if writes = [] then None else Version_store.publish vstore writes in
          List.iter (Contention.note_lock_commit ctl) st.st_roots;
          close ();
          ts
    in
    let ms_abort () =
      if not st.st_closed then begin
        (match st.st_mode with
        | Scheme.Mv_pessimistic -> List.iter (Contention.note_lock_abort ctl) st.st_roots
        | Scheme.Mv_optimistic | Scheme.Mv_snapshot -> ());
        close ()
      end
    in
    let ms_reads () = Hashtbl.fold (fun _ r acc -> r :: acc) st.st_reads [] in
    {
      Scheme.ms_mode = mode;
      ms_snapshot = snapshot;
      ms_read;
      ms_write;
      ms_precommit;
      ms_publish;
      ms_abort;
      ms_reads;
    }
  in
  let mv_run_begin () =
    Version_store.reset vstore;
    Contention.reset ctl;
    with_mu smu (fun () -> Hashtbl.reset sessions)
  in
  let scheme =
    {
      tav with
      Scheme.name = "mvcc-tav";
      descr = "TAV locks for writers, versioned snapshots for readers, adaptive optimism";
      on_top_send;
      mvcc = Some { Scheme.mv_begin; mv_run_begin; mv_dump = (fun () -> Version_store.dump vstore) };
    }
  in
  { h_scheme = scheme; h_vstore = vstore; h_contention = ctl }

let scheme ?config ?metrics an = (make ?config ?metrics an).h_scheme
