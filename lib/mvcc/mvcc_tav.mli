(** The [mvcc-tav] scheme: TAV field-mode locking for writers, versioned
    snapshots for readers, adaptive optimism for hot objects.

    Transactions are classified per attempt from their action list:

    - {b snapshot} — every action is a plain call to a method whose whole
      transitive closure is write-free, creation-free and free of
      dynamically-dispatched sends.  The transaction takes {e no locks}:
      it registers a snapshot timestamp and resolves every field read
      against the version chains.  It cannot deadlock and cannot abort.
    - {b optimistic} — an updater whose root objects the {!Contention}
      controller currently flags as hot: the locks the TAV scheme would
      take are deferred to commit, writes are buffered, and commit
      validates the read set against the version clock before writing
      back and publishing (first conflict loses and restarts).
    - {b pessimistic} — everything else (including any transaction using
      extent or domain actions, which need hierarchical class locks):
      plain TAV strict-2PL, unchanged, except committed writes also
      publish versions so concurrent snapshots stay consistent.

    The lock table sees exactly the requests {!Tav_modes.scheme} would
    issue — conflict relation included — so both engines run this scheme
    through the same machinery as every other. *)

open Tavcc_model
open Tavcc_core
open Tavcc_cc

type config = {
  gc_keep : int;  (** version-chain GC bound, see {!Version_store.create} *)
  contention : Contention.cfg;
}

val default_config : config

type handle = {
  h_scheme : Scheme.t;
  h_vstore : Version_store.t;
  h_contention : Contention.t;
}

val make : ?config:config -> ?metrics:Tavcc_obs.Metrics.t -> Analysis.t -> handle
(** Build the scheme plus introspection handles on its run-scoped state
    (tests and the chaos harness read the version chains directly). *)

val scheme : ?config:config -> ?metrics:Tavcc_obs.Metrics.t -> Analysis.t -> Scheme.t
(** [make] without the handles. *)

val read_only_method : Analysis.t -> Name.Class.t -> Name.Method.t -> bool
(** The snapshot-eligibility classifier: true when calling the method can
    neither write a field, create an instance, nor reach a
    dynamically-dispatched send, over its whole transitive closure
    (self-calls resolved as at run time, cross-class sends widened to the
    receiver's domain).  Exposed for tests. *)
