(** Adaptive per-object concurrency-control selection.

    Following Thomasian's heterogeneous data-access model (arXiv
    2404.02276), each object carries windowed counters of how transactions
    rooted at it fared under each regime: lock-mode commits and aborts
    (deadlock or wound restarts), optimistic commits and validation
    failures.  An object flips to {e optimistic} once lock aborts reach a
    threshold — its update transactions then defer their locks and
    validate at commit, so a hot reader-heavy object stops feeding the
    deadlock detector — and flips back to {e pessimistic} once validation
    failures show the optimism was misplaced.

    Counters halve every [window] notes, so old behaviour ages out and an
    object can flip repeatedly as the workload shifts. *)

open Tavcc_model

type cfg = {
  enabled : bool;
  window : int;  (** notes between decay steps *)
  flip_up_aborts : int;  (** lock aborts (within the window) that flip an object optimistic *)
  flip_down_fails : int;  (** validation failures that flip it back *)
}

val default_cfg : cfg

type t

val create : ?metrics:Tavcc_obs.Metrics.t -> cfg -> t
val reset : t -> unit

val optimistic : t -> Oid.t -> bool
(** Current regime choice for the object; always false when disabled. *)

val note_lock_abort : t -> Oid.t -> unit
val note_lock_commit : t -> Oid.t -> unit
val note_occ_commit : t -> Oid.t -> unit
val note_occ_failure : t -> Oid.t -> unit

val optimistic_objects : t -> int
