open Tavcc_model
module Metrics = Tavcc_obs.Metrics

type cfg = { enabled : bool; window : int; flip_up_aborts : int; flip_down_fails : int }

let default_cfg = { enabled = true; window = 128; flip_up_aborts = 3; flip_down_fails = 3 }

type cell = {
  mutable la : int;  (* lock-mode aborts *)
  mutable lc : int;  (* lock-mode commits *)
  mutable oc : int;  (* optimistic commits *)
  mutable ofl : int;  (* optimistic validation failures *)
  mutable opt : bool;
}

type t = {
  cfg : cfg;
  mu : Mutex.t;
  cells : (int, cell) Hashtbl.t;
  mutable notes : int;
  mutable n_opt : int;
  m_to_occ : Metrics.counter option;
  m_to_lock : Metrics.counter option;
  m_opt : Metrics.gauge option;
}

let create ?metrics cfg =
  let m f = Option.map f metrics in
  {
    cfg;
    mu = Mutex.create ();
    cells = Hashtbl.create 64;
    notes = 0;
    n_opt = 0;
    m_to_occ = m (fun r -> Metrics.counter r "mvcc.flips_to_occ");
    m_to_lock = m (fun r -> Metrics.counter r "mvcc.flips_to_lock");
    m_opt = m (fun r -> Metrics.gauge r "mvcc.optimistic_objects");
  }

let with_mu mu f =
  Mutex.lock mu;
  match f () with
  | r ->
      Mutex.unlock mu;
      r
  | exception e ->
      Mutex.unlock mu;
      raise e

let reset t =
  with_mu t.mu (fun () ->
      Hashtbl.reset t.cells;
      t.notes <- 0;
      t.n_opt <- 0);
  Option.iter (fun g -> Metrics.set g 0) t.m_opt

let cell t oid =
  let k = Oid.to_int oid in
  match Hashtbl.find_opt t.cells k with
  | Some c -> c
  | None ->
      let c = { la = 0; lc = 0; oc = 0; ofl = 0; opt = false } in
      Hashtbl.add t.cells k c;
      c

(* mutex held *)
let decay t =
  t.notes <- t.notes + 1;
  if t.cfg.window > 0 && t.notes mod t.cfg.window = 0 then
    Hashtbl.iter
      (fun _ c ->
        c.la <- c.la / 2;
        c.lc <- c.lc / 2;
        c.oc <- c.oc / 2;
        c.ofl <- c.ofl / 2)
      t.cells

let note t oid f =
  if t.cfg.enabled then begin
    with_mu t.mu (fun () ->
        decay t;
        f (cell t oid));
    Option.iter (fun g -> Metrics.set g t.n_opt) t.m_opt
  end

let note_lock_abort t oid =
  note t oid (fun c ->
      c.la <- c.la + 1;
      if (not c.opt) && c.la >= t.cfg.flip_up_aborts then begin
        c.opt <- true;
        c.la <- 0;
        c.ofl <- 0;
        t.n_opt <- t.n_opt + 1;
        Option.iter Metrics.incr t.m_to_occ
      end)

let note_lock_commit t oid = note t oid (fun c -> c.lc <- c.lc + 1)
let note_occ_commit t oid = note t oid (fun c -> c.oc <- c.oc + 1)

let note_occ_failure t oid =
  note t oid (fun c ->
      c.ofl <- c.ofl + 1;
      if c.opt && c.ofl >= t.cfg.flip_down_fails then begin
        c.opt <- false;
        c.ofl <- 0;
        c.la <- 0;
        t.n_opt <- t.n_opt - 1;
        Option.iter Metrics.incr t.m_to_lock
      end)

let optimistic t oid =
  t.cfg.enabled
  && with_mu t.mu (fun () ->
         match Hashtbl.find_opt t.cells (Oid.to_int oid) with
         | Some c -> c.opt
         | None -> false)

let optimistic_objects t = with_mu t.mu (fun () -> t.n_opt)
