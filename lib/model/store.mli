(** Object store: schema-validated instances behind a pluggable backend.

    Instances pertain to exactly one class (sec. 2.1 of the paper).  Field
    slots are laid out according to {!Schema.fields} order; reads and writes
    go either by name or by precomputed index.  The store also maintains
    class extents (the proper instances of a class) and deep extents
    (instances of a whole domain).

    {!create} gives the volatile in-memory backend; {!create_ext} mounts an
    external slot-level backend (the disk-resident page store of
    [Tavcc_storage]) behind the exact same API, so every execution engine
    runs unmodified over either. *)

type 'b t

exception Unknown_oid of Oid.t
exception Unknown_field of Name.Class.t * Name.Field.t
exception Type_mismatch of Name.Class.t * Name.Field.t * Value.t

val create : 'b Schema.t -> 'b t

(** Slot-level primitives an external backend must provide.  The store
    wrapper performs schema validation and name→index resolution before
    calling them, and never caches their answers: [x_extent] / [x_exists]
    are re-consulted on every call so a recovering backend stays
    authoritative.  [x_insert] receives the initial slots in
    {!Schema.fields} order, each paired with its field name (backends
    persist names so their logs replay without a schema); [x_write]
    receives both the slot index and the field name. *)
type ext = {
  x_insert : Name.Class.t -> (Name.Field.t * Value.t) array -> Oid.t;
  x_delete : Oid.t -> unit;
  x_exists : Oid.t -> bool;
  x_class_of : Oid.t -> Name.Class.t option;
  x_read : Oid.t -> int -> Value.t;
  x_write : Oid.t -> int -> Name.Field.t -> Value.t -> unit;
  x_field_count : Oid.t -> int;
  x_extent : Name.Class.t -> Oid.t list;
  x_count : unit -> int;
}

val create_ext : 'b Schema.t -> ext -> 'b t
val schema : 'b t -> 'b Schema.t

val new_instance : ?init:(Name.Field.t * Value.t) list -> 'b t -> Name.Class.t -> Oid.t
(** Creates a proper instance of the class; fields not mentioned in [init]
    take {!Value.default} of their type.

    @raise Invalid_argument on an unknown class
    @raise Unknown_field if [init] names a field the class does not have
    @raise Type_mismatch if an [init] value does not match the field type *)

val delete_instance : 'b t -> Oid.t -> unit
(** Removes the instance from the store and its extent.
    @raise Unknown_oid if absent *)

val exists : 'b t -> Oid.t -> bool
val class_of : 'b t -> Oid.t -> Name.Class.t

val read : 'b t -> Oid.t -> Name.Field.t -> Value.t
val write : 'b t -> Oid.t -> Name.Field.t -> Value.t -> unit

val read_idx : 'b t -> Oid.t -> int -> Value.t
val write_idx : 'b t -> Oid.t -> int -> Value.t -> unit
(** Index-based access, bypassing the name lookup; indices come from
    {!Schema.field_index} for the instance's proper class. *)

val field_count : 'b t -> Oid.t -> int

val extent : 'b t -> Name.Class.t -> Oid.t list
(** Proper instances of the class, in creation order. *)

val deep_extent : 'b t -> Name.Class.t -> Oid.t list
(** Instances of every class of the domain rooted at the class. *)

val instance_count : 'b t -> int
