module CN = Name.Class
module FN = Name.Field

type instance = { cls : CN.t; slots : Value.t array }

(* The volatile backend: everything lives in hashtables. *)
type mem = {
  gen : Oid.Gen.t;
  objects : (int, instance) Hashtbl.t;
  extents : (string, Oid.t list ref) Hashtbl.t;  (* keyed by class name, newest first *)
}

(* An external (disk-resident) backend supplies slot-level primitives;
   the store keeps schema validation and name resolution on top, so
   Exec / Par_engine / net see the exact same API either way. *)
type ext = {
  x_insert : CN.t -> (FN.t * Value.t) array -> Oid.t;
  x_delete : Oid.t -> unit;
  x_exists : Oid.t -> bool;
  x_class_of : Oid.t -> CN.t option;
  x_read : Oid.t -> int -> Value.t;
  x_write : Oid.t -> int -> FN.t -> Value.t -> unit;
  x_field_count : Oid.t -> int;
  x_extent : CN.t -> Oid.t list;
  x_count : unit -> int;
}

type impl = Mem of mem | Ext of ext

type 'b t = {
  schema : 'b Schema.t;
  impl : impl;
  layouts : (string, FN.t array) Hashtbl.t;  (* class -> field names in slot order *)
}

exception Unknown_oid of Oid.t
exception Unknown_field of CN.t * FN.t
exception Type_mismatch of CN.t * FN.t * Value.t

let create schema =
  {
    schema;
    impl =
      Mem { gen = Oid.Gen.create (); objects = Hashtbl.create 256; extents = Hashtbl.create 16 };
    layouts = Hashtbl.create 16;
  }

let create_ext schema ext = { schema; impl = Ext ext; layouts = Hashtbl.create 16 }
let schema s = s.schema

let layout s c =
  let k = CN.to_string c in
  match Hashtbl.find_opt s.layouts k with
  | Some a -> a
  | None ->
      let a = Array.of_list (List.map (fun fd -> fd.Schema.f_name) (Schema.fields s.schema c)) in
      Hashtbl.replace s.layouts k a;
      a

let extent_ref m c =
  let k = CN.to_string c in
  match Hashtbl.find_opt m.extents k with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace m.extents k r;
      r

let initial_slots s c init =
  let fields = Schema.fields s.schema c in
  let slots = Array.of_list (List.map (fun fd -> Value.default fd.Schema.f_ty) fields) in
  List.iter
    (fun (f, v) ->
      match Schema.field_index s.schema c f with
      | None -> raise (Unknown_field (c, f))
      | Some i ->
          let fd = Option.get (Schema.field_def s.schema c f) in
          if not (Value.matches fd.Schema.f_ty v) then raise (Type_mismatch (c, f, v));
          slots.(i) <- v)
    init;
  slots

let new_instance ?(init = []) s c =
  let slots = initial_slots s c init in
  match s.impl with
  | Mem m ->
      let oid = Oid.Gen.fresh m.gen in
      Hashtbl.replace m.objects (Oid.to_int oid) { cls = c; slots };
      let r = extent_ref m c in
      r := oid :: !r;
      oid
  | Ext x ->
      let names = layout s c in
      x.x_insert c (Array.mapi (fun i v -> (names.(i), v)) slots)

let find m oid =
  match Hashtbl.find_opt m.objects (Oid.to_int oid) with
  | Some i -> i
  | None -> raise (Unknown_oid oid)

let exists s oid =
  match s.impl with Mem m -> Hashtbl.mem m.objects (Oid.to_int oid) | Ext x -> x.x_exists oid

let class_of s oid =
  match s.impl with
  | Mem m -> (find m oid).cls
  | Ext x -> ( match x.x_class_of oid with Some c -> c | None -> raise (Unknown_oid oid))

let delete_instance s oid =
  match s.impl with
  | Mem m ->
      let i = find m oid in
      Hashtbl.remove m.objects (Oid.to_int oid);
      let r = extent_ref m i.cls in
      r := List.filter (fun o -> not (Oid.equal o oid)) !r
  | Ext x ->
      if not (x.x_exists oid) then raise (Unknown_oid oid);
      x.x_delete oid

let index_of s cls f =
  match Schema.field_index s.schema cls f with
  | Some i -> i
  | None -> raise (Unknown_field (cls, f))

let read s oid f =
  match s.impl with
  | Mem m ->
      let inst = find m oid in
      inst.slots.(index_of s inst.cls f)
  | Ext x -> x.x_read oid (index_of s (class_of s oid) f)

let check_ty s cls f v =
  let fd =
    match Schema.field_def s.schema cls f with
    | Some fd -> fd
    | None -> raise (Unknown_field (cls, f))
  in
  if not (Value.matches fd.Schema.f_ty v) then raise (Type_mismatch (cls, f, v))

let write s oid f v =
  match s.impl with
  | Mem m ->
      let inst = find m oid in
      check_ty s inst.cls f v;
      inst.slots.(index_of s inst.cls f) <- v
  | Ext x ->
      let cls = class_of s oid in
      check_ty s cls f v;
      x.x_write oid (index_of s cls f) f v

let read_idx s oid i =
  match s.impl with Mem m -> (find m oid).slots.(i) | Ext x -> x.x_read oid i

let write_idx s oid i v =
  match s.impl with
  | Mem m -> (find m oid).slots.(i) <- v
  | Ext x ->
      let names = layout s (class_of s oid) in
      x.x_write oid i names.(i) v

let field_count s oid =
  match s.impl with
  | Mem m -> Array.length (find m oid).slots
  | Ext x -> x.x_field_count oid

let extent s c =
  match s.impl with Mem m -> List.rev !(extent_ref m c) | Ext x -> x.x_extent c

let deep_extent s c =
  List.concat_map (fun c' -> extent s c') (Schema.domain s.schema c)

let instance_count s =
  match s.impl with Mem m -> Hashtbl.length m.objects | Ext x -> x.x_count ()
