(** The lock manager: granted groups and FIFO wait queues per resource.

    The manager is parametric in a {e conflict} predicate over requests, so
    the same machinery serves every scheme: classical read/write locking,
    Gray-style granularity locking, the Agrawal field locks, and the
    paper's access-mode locks with their intentional/hierarchical class
    rule (sec. 5.2).

    Grant policy:
    - a request compatible with all current holders is granted immediately
      when no one is queued before it (strict FIFO prevents starvation);
    - a transaction already holding the resource and asking for a further
      mode is a {e conversion}: it is checked against the {e other}
      holders only, and on conflict waits in a {e conversion prefix} of
      the queue — ahead of every plain waiter but FIFO among concurrent
      conversions — the classical upgrade path whose read→write instance
      is the lock escalation the paper blames for most deadlocks;
    - {!release_all} releases everything a transaction holds (strict 2PL
      releases only at commit/abort) and drains every affected queue in
      FIFO order, returning the newly granted requests so the caller can
      wake the corresponding transactions.

    The waits-for graph is maintained {e incrementally}: blocking a
    request adds its edges, granting and releasing remove them, and the
    adjacency lives in per-node hash tables with per-pair contribution
    counts.  {!find_deadlock} is therefore a plain DFS over the maintained
    graph — no rebuild per call — and can start from just the newly
    blocked transaction.  A per-transaction reverse index of queued
    requests makes {!release_all} and {!waiting_for} independent of the
    table size. *)

type txn_id = int

type req = {
  r_txn : txn_id;
  r_res : Resource.t;
  r_mode : int;
  r_hier : bool;
  r_pred : Pred.t option;
}
(** [r_hier] distinguishes hierarchical from intentional class locks in the
    paper's protocol; schemes that do not use it pass [false].  [r_pred]
    optionally restricts a hierarchical extent lock to a range of
    instances; conflict functions may consult it through
    {!Pred.overlaps}. *)

val pp_req : Format.formatter -> req -> unit

type outcome = Granted | Waiting

type stats = {
  mutable requests : int;  (** calls to {!acquire} *)
  mutable immediate : int;  (** granted without waiting *)
  mutable waits : int;  (** requests that had to queue *)
  mutable conversions : int;  (** requests upgrading an already-held resource *)
  mutable reacquires : int;
      (** re-acquisitions of an already-queued request — neither immediate
          nor a new wait, so [requests = immediate + waits + reacquires]
          always holds *)
  mutable granted_after_wait : int;  (** queued requests eventually granted *)
  mutable max_queue_depth : int;  (** longest wait queue ever seen, per table *)
}

val pp_stats : Format.formatter -> stats -> unit
val stats_to_json : stats -> Tavcc_obs.Json.t

val copy_stats : stats -> stats
(** A snapshot unaffected by further table activity. *)

type t

val create :
  ?metrics:Tavcc_obs.Metrics.t -> ?clock:(unit -> int) -> ?on_grant:(req -> unit) ->
  conflict:(req -> req -> bool) -> unit -> t
(** [conflict held requested] decides whether [requested] must wait behind
    [held]; it is never called on two requests of the same transaction.

    [on_grant] observes every grant — fresh immediate grants, granted
    conversions, and queue pops after a wait (re-acquisitions of a pair
    already held are not new grants).  Chaos harnesses use it as a
    virtual-clock tick at exactly the boundaries where a real lock
    manager hands locks over; it must not call back into the table.

    With [metrics], the table records into the registry (handles are
    resolved once here, never on the hot path): the [lock.queue_depth]
    histogram (queue length at each enqueue), the [lock.wait_steps]
    histogram (enqueue-to-grant latency in [clock] units — pass the
    scheduler's step counter), the [lock.waits_conversion] /
    [lock.waits_plain] counters, and the [lock.cycle_length] histogram
    (length of each cycle {!find_deadlock} reports).  Without [metrics]
    the only per-operation cost is the always-on {!stats} fields. *)

val acquire : t -> req -> outcome
(** Requesting a (mode, hier) pair already held is idempotent and counts as
    an immediate grant.  Re-acquiring a request that is already queued does
    not enqueue a second copy: it returns [Waiting] and counts as neither a
    new wait nor an immediate grant. *)

val release_all : t -> txn_id -> req list
(** Releases every lock held and every wait queued by the transaction, and
    returns the requests newly granted as queues drain, in grant order. *)

val holders : t -> Resource.t -> req list
(** Granted requests, oldest first. *)

val queued : t -> Resource.t -> req list
(** Waiting requests, next-to-be-granted first. *)

val holds : t -> txn_id -> Resource.t -> (int * bool) list
(** The (mode, hier) pairs the transaction holds on the resource. *)

val locks_of : t -> txn_id -> req list
(** Everything the transaction currently holds (not what it waits for). *)

val waiting_for : t -> txn_id -> req option
(** The request the transaction is currently queued on, if any. *)

val conflicting_holders : t -> req -> req list
(** The granted requests of other transactions that conflict with [req];
    empty means [req] would be granted if no queue existed. *)

val blockers : t -> req -> req list
(** The requests a queued [req] is waiting behind: conflicting granted
    requests plus the {e conflicting} requests queued ahead of it.  Used by
    the deadlock-prevention policies to decide whom to wound or whether to
    die — deliberately narrower than [waits_for_edges], which also carries
    the strict-FIFO queue-order edges: wounding a compatible-ahead waiter
    turns queue depth into restart storms, while a cycle closed only by
    FIFO order is the detector's job to break. *)

val waits_for_edges : t -> (txn_id * txn_id) list
(** The waits-for graph: an edge [(a, b)] when [a] is queued behind a
    conflicting request granted to [b], or behind {e any} request of [b]
    queued ahead of it (strict FIFO: the queue position blocks whether or
    not the modes conflict — omitting those edges hid real deadlocks
    between compatible slice writers queued behind each other's
    conflicts).  Read from the incrementally maintained adjacency;
    deduplicated and sorted. *)

val waits_for_edges_rebuild : t -> (txn_id * txn_id) list
(** Reference implementation of {!waits_for_edges}: rebuilds the edge list
    by scanning the whole table, as the pre-incremental manager did on
    every blocked request.  Kept for differential testing and as the
    [locking/detect] bench baseline; agrees with {!waits_for_edges} up to
    order. *)

val find_deadlock : ?from:txn_id -> t -> txn_id list option
(** A cycle of the maintained waits-for graph, if any.  With [~from], the
    DFS starts only at that node — sufficient after blocking [from], since
    every edge added by the block is incident to it, so any new cycle runs
    through it.  Callers resolving deadlocks should re-run [~from] search
    after aborting a victim: one block can close several cycles. *)

val find_deadlock_rebuild : t -> txn_id list option
(** Reference implementation of {!find_deadlock}: full rebuild of the edge
    list followed by DFS from every node (the pre-incremental behaviour). *)

val stats : t -> stats
(** The live record: it keeps mutating as the table is used ({!copy_stats}
    for a snapshot). *)

val reset_stats : t -> unit
(** Resets {e every} counter of {!stats} to zero — including
    [reacquires], [granted_after_wait] and the [max_queue_depth]
    high-water mark.  Metrics registered through [create ?metrics] are
    not touched (the registry belongs to the caller). *)
