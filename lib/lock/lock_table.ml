type txn_id = int
type req = {
  r_txn : txn_id;
  r_res : Resource.t;
  r_mode : int;
  r_hier : bool;
  r_pred : Pred.t option;
}

let pp_req ppf r =
  Format.fprintf ppf "txn%d:%a:mode%d%s%a" r.r_txn Resource.pp r.r_res r.r_mode
    (if r.r_hier then ":hier" else "")
    (fun ppf -> function None -> () | Some p -> Format.fprintf ppf ":%a" Pred.pp p)
    r.r_pred

type outcome = Granted | Waiting

type stats = {
  mutable requests : int;
  mutable immediate : int;
  mutable waits : int;
  mutable conversions : int;
  mutable reacquires : int;
  mutable granted_after_wait : int;
  mutable max_queue_depth : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "requests=%d immediate=%d waits=%d conversions=%d reacquires=%d granted_after_wait=%d \
     max_queue_depth=%d"
    s.requests s.immediate s.waits s.conversions s.reacquires s.granted_after_wait
    s.max_queue_depth

let stats_to_json s =
  Tavcc_obs.Json.Obj
    [
      ("requests", Tavcc_obs.Json.Int s.requests);
      ("immediate", Tavcc_obs.Json.Int s.immediate);
      ("waits", Tavcc_obs.Json.Int s.waits);
      ("conversions", Tavcc_obs.Json.Int s.conversions);
      ("reacquires", Tavcc_obs.Json.Int s.reacquires);
      ("granted_after_wait", Tavcc_obs.Json.Int s.granted_after_wait);
      ("max_queue_depth", Tavcc_obs.Json.Int s.max_queue_depth);
    ]

(* A queued request remembers whether it is a conversion: conversions live
   in a FIFO prefix of the queue, ahead of every non-conversion.  [w_at]
   is the clock reading at enqueue, for the wait-latency histogram. *)
type wait = { w_req : req; w_conv : bool; w_at : int }

type entry = { mutable granted : req list; mutable queue : wait list }
(* [granted] and [queue] are oldest-first. *)

(* Histogram/counter handles, resolved once at [create]: the hot paths
   never look a metric up by name. *)
type obs = {
  m_queue_depth : Tavcc_obs.Metrics.histogram;  (* queue length after each enqueue *)
  m_wait_steps : Tavcc_obs.Metrics.histogram;  (* enqueue -> grant, in clock units *)
  m_wait_conv : Tavcc_obs.Metrics.counter;  (* conversion waits *)
  m_wait_plain : Tavcc_obs.Metrics.counter;  (* non-conversion waits *)
  m_cycle_len : Tavcc_obs.Metrics.histogram;  (* length of each detected cycle *)
}

type t = {
  conflict : req -> req -> bool;
  table : entry Resource.Tbl.t;
  held_by : (txn_id, Resource.Set.t) Hashtbl.t;
  queued_on : (txn_id, Resource.t list) Hashtbl.t;
      (* reverse index of queued requests: the resources each transaction is
         queued on, oldest-first, one element per queued request *)
  wf : (txn_id, (txn_id, int ref) Hashtbl.t) Hashtbl.t;
      (* the waits-for graph, maintained incrementally: wf[a][b] counts the
         (waiting request, blocking request) pairs that put a behind b, so
         edges disappear exactly when their last contribution does *)
  stats : stats;
  clock : unit -> int;
  obs : obs option;
  on_grant : req -> unit;
}

let create ?metrics ?(clock = fun () -> 0) ?(on_grant = fun _ -> ()) ~conflict () =
  let obs =
    Option.map
      (fun m ->
        {
          m_queue_depth = Tavcc_obs.Metrics.histogram m "lock.queue_depth";
          m_wait_steps = Tavcc_obs.Metrics.histogram m "lock.wait_steps";
          m_wait_conv = Tavcc_obs.Metrics.counter m "lock.waits_conversion";
          m_wait_plain = Tavcc_obs.Metrics.counter m "lock.waits_plain";
          m_cycle_len = Tavcc_obs.Metrics.histogram m "lock.cycle_length";
        })
      metrics
  in
  {
    conflict;
    table = Resource.Tbl.create 256;
    held_by = Hashtbl.create 64;
    queued_on = Hashtbl.create 64;
    wf = Hashtbl.create 64;
    stats =
      {
        requests = 0;
        immediate = 0;
        waits = 0;
        conversions = 0;
        reacquires = 0;
        granted_after_wait = 0;
        max_queue_depth = 0;
      };
    clock;
    obs;
    on_grant;
  }

let entry t res =
  match Resource.Tbl.find_opt t.table res with
  | Some e -> e
  | None ->
      let e = { granted = []; queue = [] } in
      Resource.Tbl.replace t.table res e;
      e

let remember_held t txn res =
  let s = Option.value ~default:Resource.Set.empty (Hashtbl.find_opt t.held_by txn) in
  Hashtbl.replace t.held_by txn (Resource.Set.add res s)

let note_queued t txn res =
  let l = Option.value ~default:[] (Hashtbl.find_opt t.queued_on txn) in
  Hashtbl.replace t.queued_on txn (l @ [ res ])

let note_unqueued t txn res =
  match Hashtbl.find_opt t.queued_on txn with
  | None -> ()
  | Some l ->
      let rec drop = function
        | [] -> []
        | r :: tl -> if Resource.equal r res then tl else r :: drop tl
      in
      (match drop l with
      | [] -> Hashtbl.remove t.queued_on txn
      | l' -> Hashtbl.replace t.queued_on txn l')

(* ------------------------------------------------------------------ *)
(* Waits-for graph maintenance *)

let add_edge t a b =
  if a <> b then begin
    let succs =
      match Hashtbl.find_opt t.wf a with
      | Some s -> s
      | None ->
          let s = Hashtbl.create 4 in
          Hashtbl.replace t.wf a s;
          s
    in
    match Hashtbl.find_opt succs b with
    | Some n -> incr n
    | None -> Hashtbl.replace succs b (ref 1)
  end

let remove_edge t a b =
  if a <> b then
    match Hashtbl.find_opt t.wf a with
    | None -> ()
    | Some succs -> (
        match Hashtbl.find_opt succs b with
        | None -> ()
        | Some n ->
            decr n;
            if !n <= 0 then begin
              Hashtbl.remove succs b;
              if Hashtbl.length succs = 0 then Hashtbl.remove t.wf a
            end)

(* The edge contributions of one entry, with multiplicity: a waiting
   request waits for every conflicting granted request and for EVERY
   request queued ahead of it — conflicting or not.  The second half is
   not optional: [drain] grants strictly in queue order and stops at the
   first blocked request, so a queued request really does wait on
   everything ahead of it.  Modelling only the conflicting subset made
   deadlocks invisible whenever compatible requests interleave in a
   queue (two TAV slice writers queued behind each other's conflicts
   form a cycle with no conflict edge between them), and the detector
   slept through a genuine four-party hang. *)
let entry_edges t e =
  let acc = ref [] in
  let rec go ahead = function
    | [] -> ()
    | w :: rest ->
        List.iter
          (fun h ->
            if h.r_txn <> w.w_req.r_txn && t.conflict h w.w_req then
              acc := (w.w_req.r_txn, h.r_txn) :: !acc)
          e.granted;
        List.iter
          (fun a ->
            if a.w_req.r_txn <> w.w_req.r_txn then
              acc := (w.w_req.r_txn, a.w_req.r_txn) :: !acc)
          ahead;
        go (w :: ahead) rest
  in
  go [] e.queue;
  !acc

(* Wraps a mutation of [e]: recomputes the entry's edge contributions and
   applies the difference to the maintained graph.  Used on the cold paths
   (release/abort); the acquire paths below update edges directly. *)
let with_edge_diff t e f =
  let before = entry_edges t e in
  let r = f () in
  let after = entry_edges t e in
  List.iter (fun (a, b) -> add_edge t a b) after;
  List.iter (fun (a, b) -> remove_edge t a b) before;
  r

let same_req a b =
  a.r_txn = b.r_txn && Resource.equal a.r_res b.r_res && a.r_mode = b.r_mode
  && Bool.equal a.r_hier b.r_hier
  && Option.equal Pred.equal a.r_pred b.r_pred

(* Does [req] conflict with any granted request of another transaction? *)
let blocked_by_holders t e req =
  List.exists (fun h -> h.r_txn <> req.r_txn && t.conflict h req) e.granted

(* Accounting shared by both enqueue paths: queue depth (after the insert)
   and the conversion/plain wait split. *)
let observe_enqueue t e ~conv =
  let depth = List.length e.queue in
  if depth > t.stats.max_queue_depth then t.stats.max_queue_depth <- depth;
  match t.obs with
  | None -> ()
  | Some o ->
      Tavcc_obs.Metrics.observe o.m_queue_depth depth;
      Tavcc_obs.Metrics.incr (if conv then o.m_wait_conv else o.m_wait_plain)

(* Appends a non-conversion wait: edges run from the new request to every
   conflicting holder and every queued request (all ahead, FIFO). *)
let enqueue_last t e req =
  List.iter
    (fun h -> if h.r_txn <> req.r_txn && t.conflict h req then add_edge t req.r_txn h.r_txn)
    e.granted;
  List.iter
    (fun a -> if a.w_req.r_txn <> req.r_txn then add_edge t req.r_txn a.w_req.r_txn)
    e.queue;
  e.queue <- e.queue @ [ { w_req = req; w_conv = false; w_at = t.clock () } ];
  note_queued t req.r_txn req.r_res;
  observe_enqueue t e ~conv:false

(* Inserts a conversion wait after the last queued conversion (conversions
   stay ahead of non-conversions but FIFO among themselves).  Waiters
   behind the insertion point gain an edge to the converter. *)
let enqueue_conversion t e req =
  let rec split pre = function
    | x :: tl when x.w_conv -> split (x :: pre) tl
    | post -> (List.rev pre, post)
  in
  let pre, post = split [] e.queue in
  List.iter
    (fun h -> if h.r_txn <> req.r_txn && t.conflict h req then add_edge t req.r_txn h.r_txn)
    e.granted;
  List.iter
    (fun a -> if a.w_req.r_txn <> req.r_txn then add_edge t req.r_txn a.w_req.r_txn)
    pre;
  List.iter
    (fun b -> if b.w_req.r_txn <> req.r_txn then add_edge t b.w_req.r_txn req.r_txn)
    post;
  e.queue <- pre @ ({ w_req = req; w_conv = true; w_at = t.clock () } :: post);
  note_queued t req.r_txn req.r_res;
  observe_enqueue t e ~conv:true

(* A conversion granted while others are queued: every conflicting waiter
   now also waits for the converter. *)
let grant_conversion t e req =
  List.iter
    (fun w ->
      if w.w_req.r_txn <> req.r_txn && t.conflict req w.w_req then
        add_edge t w.w_req.r_txn req.r_txn)
    e.queue;
  e.granted <- e.granted @ [ req ];
  remember_held t req.r_txn req.r_res;
  t.on_grant req

let acquire t req =
  t.stats.requests <- t.stats.requests + 1;
  let e = entry t req.r_res in
  if List.exists (same_req req) e.granted then begin
    t.stats.immediate <- t.stats.immediate + 1;
    Granted
  end
  else if List.exists (fun w -> same_req w.w_req req) e.queue then begin
    (* Already queued: re-acquiring must not enqueue a second copy, and is
       neither a new wait nor an immediate grant. *)
    t.stats.reacquires <- t.stats.reacquires + 1;
    Waiting
  end
  else begin
    let holds_some = List.exists (fun h -> h.r_txn = req.r_txn) e.granted in
    if holds_some then begin
      (* Conversion: checked against the other holders only; waits in the
         conversion prefix of the queue on conflict. *)
      t.stats.conversions <- t.stats.conversions + 1;
      if blocked_by_holders t e req then begin
        t.stats.waits <- t.stats.waits + 1;
        enqueue_conversion t e req;
        Waiting
      end
      else begin
        t.stats.immediate <- t.stats.immediate + 1;
        grant_conversion t e req;
        Granted
      end
    end
    else if e.queue = [] && not (blocked_by_holders t e req) then begin
      t.stats.immediate <- t.stats.immediate + 1;
      e.granted <- e.granted @ [ req ];
      remember_held t req.r_txn req.r_res;
      t.on_grant req;
      Granted
    end
    else begin
      t.stats.waits <- t.stats.waits + 1;
      enqueue_last t e req;
      Waiting
    end
  end

(* Greedily grants from the head of the queue; stops at the first blocked
   request (strict FIFO).  Edge bookkeeping is the caller's (release_all
   wraps the whole entry mutation in [with_edge_diff]). *)
let drain t res e acc =
  let rec go acc =
    match e.queue with
    | [] -> acc
    | w :: rest ->
        if blocked_by_holders t e w.w_req then acc
        else begin
          e.queue <- rest;
          e.granted <- e.granted @ [ w.w_req ];
          remember_held t w.w_req.r_txn res;
          note_unqueued t w.w_req.r_txn res;
          t.stats.granted_after_wait <- t.stats.granted_after_wait + 1;
          (match t.obs with
          | None -> ()
          | Some o -> Tavcc_obs.Metrics.observe o.m_wait_steps (t.clock () - w.w_at));
          t.on_grant w.w_req;
          go (w.w_req :: acc)
        end
  in
  go acc

let release_all t txn =
  (* Resources where the transaction holds locks... *)
  let held = Option.value ~default:Resource.Set.empty (Hashtbl.find_opt t.held_by txn) in
  Hashtbl.remove t.held_by txn;
  (* ...plus the ones it is queued on, from the reverse index (no table
     scan). *)
  let queued_on = Option.value ~default:[] (Hashtbl.find_opt t.queued_on txn) in
  Hashtbl.remove t.queued_on txn;
  let affected = List.fold_left (fun s res -> Resource.Set.add res s) held queued_on in
  let newly =
    Resource.Set.fold
      (fun res acc ->
        match Resource.Tbl.find_opt t.table res with
        | None -> acc
        | Some e ->
            with_edge_diff t e (fun () ->
                e.granted <- List.filter (fun r -> r.r_txn <> txn) e.granted;
                e.queue <- List.filter (fun w -> w.w_req.r_txn <> txn) e.queue;
                if e.granted = [] && e.queue = [] then begin
                  Resource.Tbl.remove t.table res;
                  acc
                end
                else drain t res e acc))
      affected []
  in
  List.rev newly

let holders t res = match Resource.Tbl.find_opt t.table res with Some e -> e.granted | None -> []

let queued t res =
  match Resource.Tbl.find_opt t.table res with
  | Some e -> List.map (fun w -> w.w_req) e.queue
  | None -> []

let holds t txn res =
  List.filter_map
    (fun r -> if r.r_txn = txn then Some (r.r_mode, r.r_hier) else None)
    (holders t res)

let locks_of t txn =
  let held = Option.value ~default:Resource.Set.empty (Hashtbl.find_opt t.held_by txn) in
  Resource.Set.fold
    (fun res acc -> List.filter (fun r -> r.r_txn = txn) (holders t res) @ acc)
    held []

let waiting_for t txn =
  (* The oldest queued request, through the reverse index: deterministic
     and O(1) in the table size. *)
  match Hashtbl.find_opt t.queued_on txn with
  | None | Some [] -> None
  | Some (res :: _) -> (
      match Resource.Tbl.find_opt t.table res with
      | None -> None
      | Some e ->
          List.find_map (fun w -> if w.w_req.r_txn = txn then Some w.w_req else None) e.queue)

let conflicting_holders t req =
  match Resource.Tbl.find_opt t.table req.r_res with
  | None -> []
  | Some e -> List.filter (fun h -> h.r_txn <> req.r_txn && t.conflict h req) e.granted

let blockers t req =
  match Resource.Tbl.find_opt t.table req.r_res with
  | None -> []
  | Some e ->
      let held =
        List.filter (fun h -> h.r_txn <> req.r_txn && t.conflict h req) e.granted
      in
      (* Only *conflicting* queued-ahead requests count here, even though
         grants are strict FIFO and a compatible request ahead delays this
         one too (see [entry_edges]).  [blockers] feeds wound-wait and
         wait-die; wounding compatible-ahead waiters turns ordinary queue
         depth into restart storms (livelock on hot instances).  A cycle
         closed only by FIFO order is instead resolved by the detector,
         whose waits-for graph does carry the FIFO edges. *)
      let rec ahead acc = function
        | [] -> List.rev acc
        | q :: _ when q.w_req.r_txn = req.r_txn && same_req q.w_req req -> List.rev acc
        | q :: tl ->
            ahead
              (if q.w_req.r_txn <> req.r_txn && t.conflict q.w_req req then q.w_req :: acc
               else acc)
              tl
      in
      held @ ahead [] e.queue

(* ------------------------------------------------------------------ *)
(* The waits-for graph: maintained view and reference rebuild *)

let waits_for_edges t =
  Hashtbl.fold
    (fun a succs acc ->
      Hashtbl.fold (fun b n acc -> if !n > 0 then (a, b) :: acc else acc) succs acc)
    t.wf []
  |> List.sort compare

(* Reference implementation: rebuilds the edge list by scanning the whole
   table, as the pre-incremental manager did.  Kept for differential
   testing and as the bench baseline. *)
let waits_for_edges_rebuild t =
  let edges = ref [] in
  let add a b = if a <> b && not (List.mem (a, b) !edges) then edges := (a, b) :: !edges in
  Resource.Tbl.iter
    (fun _ e -> List.iter (fun (a, b) -> add a b) (entry_edges t e))
    t.table;
  !edges

let succs_of t v =
  match Hashtbl.find_opt t.wf v with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun b n acc -> if !n > 0 then b :: acc else acc) s []
      |> List.sort Int.compare

(* DFS with an explicit path to recover the cycle. *)
let dfs_cycle succs start =
  let visited = Hashtbl.create 16 in
  let rec dfs path v =
    if List.mem v path then
      let rec take = function
        | [] -> []
        | x :: tl -> if x = v then [ x ] else x :: take tl
      in
      Some (List.rev (take path))
    else if Hashtbl.mem visited v then None
    else begin
      Hashtbl.replace visited v ();
      List.find_map (dfs (v :: path)) (succs v)
    end
  in
  dfs [] start

let find_deadlock ?from t =
  let cycle =
    match from with
    | Some v -> dfs_cycle (succs_of t) v
    | None ->
        let nodes = Hashtbl.fold (fun k _ acc -> k :: acc) t.wf [] |> List.sort Int.compare in
        List.find_map (dfs_cycle (succs_of t)) nodes
  in
  (match (cycle, t.obs) with
  | Some c, Some o -> Tavcc_obs.Metrics.observe o.m_cycle_len (List.length c)
  | _ -> ());
  cycle

let find_deadlock_rebuild t =
  let edges = waits_for_edges_rebuild t in
  let succs v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges in
  let nodes = List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  List.find_map (dfs_cycle succs) nodes

let stats t = t.stats

let reset_stats t =
  t.stats.requests <- 0;
  t.stats.immediate <- 0;
  t.stats.waits <- 0;
  t.stats.conversions <- 0;
  t.stats.reacquires <- 0;
  t.stats.granted_after_wait <- 0;
  t.stats.max_queue_depth <- 0

let copy_stats s = { s with requests = s.requests }
