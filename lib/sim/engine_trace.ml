open Tavcc_lock
module Trace = Tavcc_obs.Trace
module Json = Tavcc_obs.Json

(* Per-transaction reconstruction state while folding over the timed
   event stream. *)
type tstate = {
  mutable gen : int;  (* attempt number, counts up across restarts *)
  mutable attempt_start : int option;  (* step of the open attempt's begin *)
  mutable wait_start : int option;  (* step of the open wait's block *)
}

let to_trace ?(pid = 0) events =
  let states = Hashtbl.create 16 in
  let state id =
    match Hashtbl.find_opt states id with
    | Some s -> s
    | None ->
        let s = { gen = 0; attempt_start = None; wait_start = None } in
        Hashtbl.replace states id s;
        s
  in
  let out = ref [] in
  let push e = out := e :: !out in
  let close_wait ts id =
    let s = state id in
    match s.wait_start with
    | None -> ()
    | Some _ ->
        s.wait_start <- None;
        push (Trace.end_ ~cat:"lock" ~pid ~ts ~tid:id "wait")
  in
  let close_attempt ts id outcome =
    let s = state id in
    close_wait ts id;
    match s.attempt_start with
    | None -> ()
    | Some t0 ->
        s.attempt_start <- None;
        push
          (Trace.complete ~cat:"txn" ~pid ~ts:t0 ~dur:(ts - t0) ~tid:id
             ~args:
               [ ("outcome", Json.String outcome); ("generation", Json.Int s.gen) ]
             (Printf.sprintf "t%d#%d" id s.gen));
        s.gen <- s.gen + 1
  in
  let last_ts = ref 0 in
  List.iter
    (fun ((ts, ev) : int * Engine.event) ->
      last_ts := max !last_ts ts;
      match ev with
      | Engine.Ev_begin id -> (state id).attempt_start <- Some ts
      | Engine.Ev_blocked (id, req) ->
          (state id).wait_start <- Some ts;
          push
            (Trace.begin_ ~cat:"lock" ~pid ~ts ~tid:id
               ~args:[ ("request", Json.String (Format.asprintf "%a" Lock_table.pp_req req)) ]
               "wait")
      | Engine.Ev_resumed id -> close_wait ts id
      | Engine.Ev_deadlock (cycle, victim) ->
          push
            (Trace.instant ~cat:"deadlock" ~pid ~ts ~tid:victim
               ~args:
                 [
                   ("cycle", Json.List (List.map (fun t -> Json.Int t) cycle));
                   ("victim", Json.Int victim);
                 ]
               "deadlock")
      | Engine.Ev_wound (by, victim) ->
          push
            (Trace.instant ~cat:"deadlock" ~pid ~ts ~tid:victim
               ~args:[ ("by", Json.Int by) ]
               "wound")
      | Engine.Ev_died id -> push (Trace.instant ~cat:"deadlock" ~pid ~ts ~tid:id "die")
      | Engine.Ev_timeout id -> push (Trace.instant ~cat:"deadlock" ~pid ~ts ~tid:id "timeout")
      | Engine.Ev_forced_abort id ->
          push (Trace.instant ~cat:"deadlock" ~pid ~ts ~tid:id "chaos-abort")
      | Engine.Ev_abort id -> close_attempt ts id "abort"
      | Engine.Ev_commit id -> close_attempt ts id "commit")
    events;
  (* Close whatever is still open (transactions that died with a raised
     exception emit no Ev_abort). *)
  Hashtbl.iter
    (fun id s ->
      if s.wait_start <> None || s.attempt_start <> None then begin
        close_attempt !last_ts id "unfinished"
      end)
    states;
  List.rev !out

let to_json ?pid events = Trace.to_json (to_trace ?pid events)
