open Tavcc_cc
open Tavcc_lock
module Txn = Tavcc_txn.Txn
module History = Tavcc_txn.History
module Sink = Tavcc_obs.Sink
module Metrics = Tavcc_obs.Metrics

type deadlock_policy = Detect | Wound_wait | Wait_die | No_wait | Timeout of int

let policy_name = function
  | Detect -> "detect"
  | Wound_wait -> "wound-wait"
  | Wait_die -> "wait-die"
  | No_wait -> "no-wait"
  | Timeout _ -> "timeout"

type event =
  | Ev_begin of int
  | Ev_blocked of int * Lock_table.req
  | Ev_resumed of int
  | Ev_deadlock of int list * int
  | Ev_wound of int * int
  | Ev_died of int
  | Ev_timeout of int
  | Ev_forced_abort of int
  | Ev_abort of int
  | Ev_commit of int

let pp_event ppf = function
  | Ev_begin t -> Format.fprintf ppf "t%d begins" t
  | Ev_blocked (t, r) -> Format.fprintf ppf "t%d blocked on %a" t Lock_table.pp_req r
  | Ev_resumed t -> Format.fprintf ppf "t%d resumed" t
  | Ev_deadlock (cycle, victim) ->
      Format.fprintf ppf "deadlock {%s}, victim t%d"
        (String.concat "," (List.map (Printf.sprintf "t%d") cycle))
        victim
  | Ev_wound (w, v) -> Format.fprintf ppf "t%d wounds t%d" w v
  | Ev_died t -> Format.fprintf ppf "t%d dies" t
  | Ev_timeout t -> Format.fprintf ppf "t%d times out" t
  | Ev_forced_abort t -> Format.fprintf ppf "t%d force-aborted" t
  | Ev_abort t -> Format.fprintf ppf "t%d aborts" t
  | Ev_commit t -> Format.fprintf ppf "t%d commits" t

type sink = (int * event) Sink.t

type access =
  | Ob_begin of int
  | Ob_read of int * Tavcc_model.Oid.t * Tavcc_model.Name.Field.t
  | Ob_write of {
      txn : int;
      oid : Tavcc_model.Oid.t;
      field : Tavcc_model.Name.Field.t;
      before : Tavcc_model.Value.t;
      after : Tavcc_model.Value.t;
    }
  | Ob_commit of int
  | Ob_abort of int

type hooks = {
  hk_pick : (step:int -> ready:int list -> int) option;
  hk_forced_abort : (step:int -> eligible:int list -> int list) option;
  hk_on_grant : (Lock_table.req -> unit) option;
  hk_observe : (access -> unit) option;
  hk_probe :
    (txn:int -> holds:(Tavcc_lock.Resource.t -> (int * bool) list) -> Exec.probe) option;
}

let no_hooks =
  { hk_pick = None; hk_forced_abort = None; hk_on_grant = None; hk_observe = None;
    hk_probe = None }

type config = {
  seed : int;
  yield_on_access : bool;
  max_restarts : int;
  max_steps : int;
  policy : deadlock_policy;
  sink : sink;
  hooks : hooks;
  metrics : Metrics.t option;
}

let default_config =
  { seed = 42; yield_on_access = false; max_restarts = 100; max_steps = 1_000_000;
    policy = Detect; sink = Sink.null; hooks = no_hooks; metrics = None }

type result = {
  commits : int;
  deadlocks : int;
  aborts : int;
  restarts : int;
  lock_requests : int;
  lock_waits : int;
  lock_conversions : int;
  scheduler_steps : int;
  history : History.t;
  failed : (int * string) list;
  events : (int * event) list;
  lock_stats : Lock_table.stats;
}

let serializable r = History.conflict_serializable r.history

type _ Effect.t += Park : unit Effect.t | Yield : unit Effect.t

exception Deadlock_abort

type tstate = Ready | Running | Parked | Finished | Dead

type task = {
  id : int;
  actions : Exec.action list;
  mutable txn : Txn.t;
  mutable state : tstate;
  mutable k : (unit, unit) Effect.Deep.continuation option;
  mutable restarts : int;
  mutable parked_at : int;  (* scheduler step at which the fiber parked *)
  mutable began_at : int;  (* step at which the current attempt began *)
  mutable session : Scheme.mvcc_session option;  (* open mvcc session of the attempt *)
}

(* Engine-level metric handles, resolved once per run. *)
type emetrics = {
  em_commits : Metrics.counter;
  em_aborts : Metrics.counter;
  em_deadlocks : Metrics.counter;
  em_wounds : Metrics.counter;
  em_died : Metrics.counter;
  em_timeouts : Metrics.counter;
  em_restarts : Metrics.counter;
  em_attempt_steps : Metrics.histogram;  (* begin -> commit/abort, per attempt *)
  em_steps : Metrics.counter;
  em_steps_policy : Metrics.counter;  (* same, keyed by the run's policy *)
}

let run ?(config = default_config) ~scheme ~store ~jobs () =
  let rng = Rng.create config.seed in
  let steps = ref 0 in
  let locks =
    Lock_table.create ?metrics:config.metrics ?on_grant:config.hooks.hk_on_grant
      ~clock:(fun () -> !steps)
      ~conflict:scheme.Scheme.conflict ()
  in
  let observe =
    match config.hooks.hk_observe with Some f -> f | None -> fun _ -> ()
  in
  let history = History.create () in
  let commits = ref 0 and deadlocks = ref 0 and aborts = ref 0 in
  let failed = ref [] in
  let em =
    Option.map
      (fun m ->
        {
          em_commits = Metrics.counter m "engine.commits";
          em_aborts = Metrics.counter m "engine.aborts";
          em_deadlocks = Metrics.counter m "engine.deadlocks";
          em_wounds = Metrics.counter m "engine.wounds";
          em_died = Metrics.counter m "engine.died";
          em_timeouts = Metrics.counter m "engine.timeouts";
          em_restarts = Metrics.counter m "engine.restarts";
          em_attempt_steps = Metrics.histogram m "engine.attempt_steps";
          em_steps = Metrics.counter m "engine.steps";
          em_steps_policy =
            Metrics.counter m ("engine.steps." ^ policy_name config.policy);
        })
      config.metrics
  in
  let tick f = match em with None -> () | Some e -> f e in
  let emit e = Sink.push config.sink (!steps, e) in
  let end_attempt t =
    tick (fun e -> Metrics.observe e.em_attempt_steps (!steps - t.began_at))
  in
  let tasks =
    List.map
      (fun (id, actions) ->
        if id <= 0 then invalid_arg "Engine.run: transaction ids must be positive";
        { id; actions; txn = Txn.make ~id ~birth:id; state = Ready; k = None; restarts = 0;
          parked_at = 0; began_at = 0; session = None })
      jobs
  in
  let task_of_txn id =
    match List.find_opt (fun t -> t.id = id) tasks with
    | Some t -> t
    | None -> invalid_arg "Engine: unknown transaction id"
  in
  let wake reqs =
    List.iter
      (fun (r : Lock_table.req) ->
        let t = task_of_txn r.Lock_table.r_txn in
        if t.state = Parked then t.state <- Ready)
      reqs
  in
  let release_and_wake id = wake (Lock_table.release_all locks id) in
  let cleanup_abort t =
    (match t.session with Some s -> s.Scheme.ms_abort () | None -> ());
    t.session <- None;
    incr aborts;
    tick (fun e -> Metrics.incr e.em_aborts);
    end_attempt t;
    emit (Ev_abort t.id);
    History.record history (History.Abort t.id);
    observe (Ob_abort t.id);
    Txn.abort store t.txn;
    release_and_wake t.id;
    t.k <- None;
    if t.restarts >= config.max_restarts then begin
      t.state <- Dead;
      failed := (t.id, "exceeded max restarts") :: !failed
    end
    else begin
      t.restarts <- t.restarts + 1;
      tick (fun e -> Metrics.incr e.em_restarts);
      t.txn <- Txn.reset_for_restart t.txn;
      t.state <- Ready
    end
  in
  let abort_victim vid =
    let v = task_of_txn vid in
    match (v.state, v.k) with
    | (Parked | Ready), Some k ->
        v.k <- None;
        (* Unwinds the victim fiber; its handler performs the cleanup. *)
        Effect.Deep.discontinue k Deadlock_abort
    | _ ->
        (* The victim holds locks, so it has run and is suspended with a
           live continuation; the only running fiber is the caller, which
           handles the self-victim case by raising. *)
        assert false
  in
  let request_held (req : Lock_table.req) =
    List.exists
      (fun (m, h) -> m = req.Lock_table.r_mode && h = req.Lock_table.r_hier)
      (Lock_table.holds locks req.Lock_table.r_txn req.Lock_table.r_res)
  in
  let acquire t (req : Lock_table.req) =
    match Lock_table.acquire locks req with
    | Lock_table.Granted -> ()
    | Lock_table.Waiting ->
        emit (Ev_blocked (t.id, req));
        (match config.policy with
        | Detect ->
            (* Every edge added by this block is incident to [t], so any new
               cycle runs through it: search from [t] only, over the
               incrementally maintained graph.  One block can close several
               cycles, so keep resolving until none is left. *)
            let rec resolve () =
              match Lock_table.find_deadlock ~from:t.id locks with
              | Some cycle ->
                  incr deadlocks;
                  tick (fun e -> Metrics.incr e.em_deadlocks);
                  (* Victim: the youngest transaction of the cycle. *)
                  let victim = List.fold_left max min_int cycle in
                  emit (Ev_deadlock (cycle, victim));
                  if victim = t.id then raise Deadlock_abort
                  else begin
                    abort_victim victim;
                    resolve ()
                  end
              | None -> ()
            in
            resolve ()
        | Wound_wait ->
            (* Wound every younger transaction in the way; wait for the
               older ones. *)
            let blocking =
              Lock_table.blockers locks req
              |> List.map (fun r -> r.Lock_table.r_txn)
              |> List.sort_uniq Int.compare
            in
            List.iter
              (fun txn ->
                let v = task_of_txn txn in
                if v.txn.Txn.birth > t.txn.Txn.birth && v.state <> Finished && v.state <> Dead
                then begin
                  emit (Ev_wound (t.id, txn));
                  tick (fun e -> Metrics.incr e.em_wounds);
                  abort_victim txn
                end)
              blocking
        | Wait_die ->
            (* Die (and restart with the same birth) rather than wait
               behind an older transaction. *)
            let blocking = Lock_table.blockers locks req in
            if
              List.exists
                (fun r -> (task_of_txn r.Lock_table.r_txn).txn.Txn.birth < t.txn.Txn.birth)
                blocking
            then begin
              emit (Ev_died t.id);
              tick (fun e -> Metrics.incr e.em_died);
              raise Deadlock_abort
            end
        | No_wait ->
            emit (Ev_died t.id);
            tick (fun e -> Metrics.incr e.em_died);
            raise Deadlock_abort
        | Timeout _ -> ());
        let rec wait parked =
          if not (request_held req) then begin
            Effect.perform Park;
            wait true
          end
          else if parked then emit (Ev_resumed t.id)
        in
        wait false
  in
  let start t =
    let body () =
      t.began_at <- !steps;
      emit (Ev_begin t.id);
      History.record history (History.Begin t.id);
      observe (Ob_begin t.id);
      let ctx = { Scheme.txn = t.txn; acquire = (fun req -> acquire t req) } in
      let mv =
        Option.map
          (fun m ->
            m.Scheme.mv_begin ctx
              ~read:(Tavcc_model.Store.read store)
              ~class_of:(Tavcc_model.Store.class_of store)
              t.actions)
          scheme.Scheme.mvcc
      in
      t.session <- mv;
      let versioned =
        match mv with
        | Some s -> s.Scheme.ms_mode <> Scheme.Mv_pessimistic
        | None -> false
      in
      let on_read oid f =
        (* versioned reads enter the history as [Snapshot_read]s at commit *)
        if not versioned then History.record history (History.Read (t.id, oid, f));
        observe (Ob_read (t.id, oid, f))
      in
      let on_write oid f = History.record history (History.Write (t.id, oid, f)) in
      let on_update =
        match config.hooks.hk_observe with
        | None -> None
        | Some _ ->
            Some
              (fun oid field ~before ~after ->
                observe (Ob_write { txn = t.id; oid; field; before; after }))
      in
      let yield =
        if config.yield_on_access then fun () -> Effect.perform Yield else fun () -> ()
      in
      let probe =
        Option.map
          (fun mk -> mk ~txn:t.id ~holds:(Lock_table.holds locks t.id))
          config.hooks.hk_probe
      in
      Exec.begin_txn ~scheme ~store ~ctx t.actions;
      List.iter
        (fun a ->
          Exec.perform ~scheme ~store ~ctx ?mv ~on_read ~on_write ?on_update ?probe
            ~yield ~max_steps:config.max_steps a)
        t.actions;
      match mv with
      | None -> ()
      | Some s ->
          (* two-step mvcc commit: precommit may still abort (deferred
             locks, optimistic validation); publish is the point of no
             return and immediately precedes the commit record *)
          let write oid f v =
            let before = Tavcc_model.Store.read store oid f in
            Txn.log_write t.txn oid f ~before;
            History.record history (History.Write (t.id, oid, f));
            (match on_update with
            | Some g -> g oid f ~before ~after:v
            | None -> ());
            Tavcc_model.Store.write store oid f v
          in
          s.Scheme.ms_precommit ctx ~write;
          if versioned then begin
            History.record history (History.Snapshot (t.id, s.Scheme.ms_snapshot));
            List.iter
              (fun (oid, f, vts) ->
                History.record history (History.Snapshot_read (t.id, oid, f, vts)))
              (s.Scheme.ms_reads ())
          end;
          (match s.Scheme.ms_publish () with
          | Some ts -> History.record history (History.Publish (t.id, ts))
          | None -> ());
          t.session <- None
    in
    Effect.Deep.match_with body ()
      {
        retc =
          (fun () ->
            Txn.commit t.txn;
            tick (fun e -> Metrics.incr e.em_commits);
            end_attempt t;
            emit (Ev_commit t.id);
            History.record history (History.Commit t.id);
            observe (Ob_commit t.id);
            incr commits;
            t.state <- Finished;
            t.k <- None;
            release_and_wake t.id);
        exnc =
          (fun e ->
            match e with
            | Deadlock_abort | Scheme.Validation_failed -> cleanup_abort t
            | e ->
                (match t.session with Some s -> s.Scheme.ms_abort () | None -> ());
                t.session <- None;
                end_attempt t;
                History.record history (History.Abort t.id);
                observe (Ob_abort t.id);
                Txn.abort store t.txn;
                release_and_wake t.id;
                t.state <- Dead;
                t.k <- None;
                failed := (t.id, Printexc.to_string e) :: !failed);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Park ->
                Some
                  (fun (k : (a, _) Effect.Deep.continuation) ->
                    t.state <- Parked;
                    t.parked_at <- !steps;
                    t.k <- Some k)
            | Yield ->
                Some
                  (fun (k : (a, _) Effect.Deep.continuation) ->
                    t.state <- Ready;
                    t.k <- Some k)
            | _ -> None);
      }
  in
  Option.iter (fun m -> m.Scheme.mv_run_begin ()) scheme.Scheme.mvcc;
  let rec loop () =
    (* Expire timed-out waiters before scheduling. *)
    (match config.policy with
    | Timeout n ->
        List.iter
          (fun t ->
            if t.state = Parked && !steps - t.parked_at > n then begin
              emit (Ev_timeout t.id);
              tick (fun e -> Metrics.incr e.em_timeouts);
              abort_victim t.id
            end)
          tasks
    | _ -> ());
    (match config.hooks.hk_forced_abort with
    | None -> ()
    | Some f ->
        (* Only parked or yielded fibers with a live continuation can be
           discontinued the way a deadlock victim is. *)
        let eligible =
          List.filter
            (fun t -> (t.state = Parked || t.state = Ready) && t.k <> None)
            tasks
        in
        let ids = List.map (fun t -> t.id) eligible in
        if ids <> [] then
          List.iter
            (fun id ->
              (* Re-check at abort time: an earlier abort this round may
                 have restarted the task (fresh attempt, no continuation). *)
              let still_eligible =
                List.exists
                  (fun t ->
                    t.id = id && (t.state = Parked || t.state = Ready)
                    && t.k <> None)
                  eligible
              in
              if List.mem id ids && still_eligible then begin
                emit (Ev_forced_abort id);
                abort_victim id
              end)
            (f ~step:!steps ~eligible:ids));
    let ready = List.filter (fun t -> t.state = Ready) tasks in
    match ready with
    | [] ->
        let parked = List.filter (fun t -> t.state = Parked) tasks in
        (match (parked, config.policy) with
        | [], _ -> ()
        | p :: _, Timeout _ ->
            (* Nothing can run: fire the oldest waiter's timeout early. *)
            let oldest = List.fold_left (fun a t -> if t.parked_at < a.parked_at then t else a) p parked in
            emit (Ev_timeout oldest.id);
            tick (fun e -> Metrics.incr e.em_timeouts);
            abort_victim oldest.id;
            loop ()
        | _ :: _, _ ->
            failwith "Engine: stalled — parked fibers with no runnable task and no deadlock")
    | ready ->
        incr steps;
        let t =
          match config.hooks.hk_pick with
          | None -> Rng.pick rng ready
          | Some f ->
              let id = f ~step:!steps ~ready:(List.map (fun t -> t.id) ready) in
              (match List.find_opt (fun t -> t.id = id) ready with
              | Some t -> t
              | None ->
                  invalid_arg "Engine: pick hook chose a non-ready transaction")
        in
        t.state <- Running;
        (match t.k with
        | Some k ->
            t.k <- None;
            Effect.Deep.continue k ()
        | None -> start t);
        loop ()
  in
  loop ();
  tick (fun e ->
      Metrics.add e.em_steps !steps;
      Metrics.add e.em_steps_policy !steps);
  (* A snapshot, so the result is not mutated by later table reuse. *)
  let ls = Lock_table.copy_stats (Lock_table.stats locks) in
  {
    commits = !commits;
    deadlocks = !deadlocks;
    aborts = !aborts;
    restarts = List.fold_left (fun n t -> n + t.restarts) 0 tasks;
    lock_requests = ls.Lock_table.requests;
    lock_waits = ls.Lock_table.waits;
    lock_conversions = ls.Lock_table.conversions;
    scheduler_steps = !steps;
    history;
    failed = !failed;
    events = Sink.contents config.sink;
    lock_stats = ls;
  }
