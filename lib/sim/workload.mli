(** Synthetic schemas, stores and transaction workloads.

    The generators build ODML ASTs directly (no text round trip) and are
    fully driven by a {!Rng.t}, so workloads replay from a seed.  Method
    bodies are shaped like the paper's examples: a few field reads and
    writes plus self-directed sends, with subclass overrides extending the
    overridden method through a prefixed call — the code-reuse pattern
    behind problems P2 and P3.

    Runtime termination is guaranteed by construction: a simple self-send
    only targets a strictly lower-numbered shared method, and a prefixed
    send strictly ascends the inheritance chain.  (Analysis-only schemas
    may additionally contain recursive cycles — see
    {!recursive_cluster_schema} — to exercise the SCC path of the TAV
    algorithm.) *)

open Tavcc_model
open Tavcc_lang

type schema_params = {
  sp_depth : int;  (** inheritance depth (1 = root only) *)
  sp_fanout : int;  (** subclasses per class *)
  sp_shared_methods : int;  (** methods defined at the root, overridable *)
  sp_own_methods : int;  (** extra methods per class *)
  sp_fields : int;  (** own integer fields per class *)
  sp_reads : int;  (** field reads per method body *)
  sp_writes : int;  (** field writes per method body *)
  sp_selfcalls : int;  (** self-sends per shared method body *)
  sp_override_prob : float;  (** chance a class overrides a shared method *)
}

val default_params : schema_params

val make_schema : Rng.t -> schema_params -> Ast.body Schema.t
(** @raise Failure if the generated schema fails validation (a generator
    bug, not an input condition) *)

val chain_schema : levels:int -> Ast.body Schema.t
(** One class, methods [m0 .. m{levels}]: [m0] writes the field, [m_j]
    (j>0) reads it and self-sends [m_{j-1}] — the reader-then-writer
    cascade behind lock escalation (problems P2/P3).  [m{levels}] is the
    entry point. *)

val pseudo_conflict_schema : unit -> Ast.body Schema.t
(** Two-class hierarchy shaped like the paper's example: the subclass adds
    fields and a method [wsub] touching only them, while [wbase] writes
    inherited fields — the m2/m4 pseudo-conflict (problem P4). *)

val recursive_cluster_schema : methods:int -> Ast.body Schema.t
(** One class whose methods all call each other (one directed cycle plus
    chords): every method's TAV equals the join of all DAVs.  Used to test
    and bench the SCC path; not meant to be executed. *)

val wide_schema : fields:int -> touched:int -> Ast.body Schema.t
(** One class with [fields] integer fields and one method [touch] writing
    the first [touched] of them (plus [probe] reading the last field) —
    the lock-call-count workload of bench E6. *)

val slice_schema : ?readers:int -> methods:int -> work:int -> unit -> Ast.body Schema.t
(** One class [grid] with [methods] integer fields [s0..] and methods
    [u0..], where [u_i] performs [work] read-modify-writes of field
    [s_i] and touches nothing else.  The slices are pairwise disjoint,
    so under the paper's TAV modes every pair of distinct methods
    commutes on the same instance, while an instance-granularity r/w
    scheme sees every [u_i] as a writer and serialises them — the
    multicore benchmark's contended workload (E16).

    [readers] (default 0) adds write-free methods [r0..]: [r_i] performs
    [work] reads of field [s_(i mod methods)].  These are
    snapshot-eligible under [mvcc-tav] and plain readers elsewhere. *)

val slice_jobs :
  Rng.t ->
  Ast.body Store.t ->
  txns:int ->
  actions_per_txn:int ->
  hot_instances:int ->
  (int * Tavcc_cc.Exec.action list) list
(** Transaction [i] calls its own slice method [u_{(i-1) mod methods}]
    [actions_per_txn] times, each on a random instance of a hot set of
    [hot_instances] grid instances.  Every transaction hammers the same
    few instances — full contention for instance locking (including
    lock-order deadlocks across the hot set), none for field-disjoint
    modes.  Only the [u*] slice methods are used.  Transaction ids start
    at 1. *)

val mixed_slice_jobs :
  Rng.t ->
  Ast.body Store.t ->
  txns:int ->
  actions_per_txn:int ->
  hot_instances:int ->
  read_frac:float ->
  (int * Tavcc_cc.Exec.action list) list
(** Like {!slice_jobs} over a {!slice_schema} built with [readers > 0]:
    with probability [read_frac] a transaction performs only [r*] calls
    (all of its actions), otherwise only [u*] calls — whole transactions
    are read-only, which is what snapshot classification needs.
    @raise Invalid_argument when [read_frac > 0] but the schema has no
    reader methods *)

val populate : 'a Store.t -> per_class:int -> unit
(** Creates [per_class] instances of every class. *)

val random_jobs :
  Rng.t ->
  Ast.body Store.t ->
  txns:int ->
  actions_per_txn:int ->
  extent_prob:float ->
  hot_instances:int ->
  hot_prob:float ->
  (int * Tavcc_cc.Exec.action list) list
(** Random single-instance calls (biased towards a hot set of
    [hot_instances] with probability [hot_prob]) mixed with extent scans.
    Transaction ids start at 1. *)
