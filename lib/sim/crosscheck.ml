open Tavcc_model
open Tavcc_core
module CN = Name.Class
module MN = Name.Method

type outcome = {
  o_predicted : Site.t list;
  o_observed : Site.t list;
  o_unpredicted : Site.t list;
  o_deadlocks : int;
  o_commits : int;
}

let sound o = o.o_unpredicted = []

let entries_in_cycles entry_of events =
  List.fold_left
    (fun acc (_, ev) ->
      match ev with
      | Engine.Ev_deadlock (cycle, _victim) ->
          List.fold_left (fun acc t -> Site.Set.add (entry_of t) acc) acc cycle
      | _ -> acc)
    Site.Set.empty events

let run_single_instance ?(seed = 42) ?(yield_on_access = true) ~an ~cls ~meths () =
  let schema = Analysis.schema an in
  let store = Store.create schema in
  let oid = Store.new_instance store cls in
  let jobs =
    List.mapi (fun i m -> (i + 1, [ Tavcc_cc.Exec.Call (oid, m, [ Value.Vint 1 ]) ])) meths
  in
  let sink = Tavcc_obs.Sink.ring 1_000_000 in
  let config =
    { Engine.default_config with seed; yield_on_access; policy = Engine.Detect; sink }
  in
  let r = Engine.run ~config ~scheme:(Tavcc_cc.Rw_instance.scheme an) ~store ~jobs () in
  let meths = Array.of_list meths in
  let entry_of t = (cls, meths.(t - 1)) in
  let observed = entries_in_cycles entry_of r.Engine.events in
  let predicted = Tavcc_analyze.Lint.escalation_sites an in
  {
    o_predicted = Site.Set.elements predicted;
    o_observed = Site.Set.elements observed;
    o_unpredicted = Site.Set.elements (Site.Set.diff observed predicted);
    o_deadlocks = r.Engine.deadlocks;
    o_commits = r.Engine.commits;
  }

let run_e4 ?(seed = 42) ?(txns = 8) ~levels () =
  let schema = Workload.chain_schema ~levels in
  let an = Analysis.compile schema in
  let cls = CN.of_string "chain" in
  let meths =
    List.init txns (fun i -> MN.of_string (Printf.sprintf "m%d" (i mod (levels + 1))))
  in
  run_single_instance ~seed ~an ~cls ~meths ()

let pp_sites ppf sites =
  match sites with
  | [] -> Format.pp_print_string ppf "(none)"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        Site.pp ppf sites

let pp_outcome ppf o =
  Format.fprintf ppf "predicted escalation sites: %a@\n" pp_sites o.o_predicted;
  Format.fprintf ppf "observed deadlock entries:  %a@\n" pp_sites o.o_observed;
  Format.fprintf ppf "deadlock cycles: %d, commits: %d@\n" o.o_deadlocks o.o_commits;
  if sound o then Format.fprintf ppf "sound: every observed deadlock was predicted@\n"
  else Format.fprintf ppf "UNSOUND: unpredicted entries %a@\n" pp_sites o.o_unpredicted
