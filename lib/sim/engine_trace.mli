(** Export an engine event stream as a Chrome trace.

    Folds the (step, event) stream a ring or callback sink collected into
    {!Tavcc_obs.Trace} events — one ["X"] complete span per transaction
    attempt (named [t<id>#<generation>], with the outcome in [args]),
    ["B"]/["E"] wait spans for each blocked-to-resumed interval, and
    instant markers for deadlocks, wounds, deaths and timeouts.
    Timestamps are scheduler steps (the format calls them microseconds;
    the scale is irrelevant to the viewer).  The resulting JSON loads
    directly in Perfetto or [chrome://tracing]. *)

val to_trace : ?pid:int -> (int * Engine.event) list -> Tavcc_obs.Trace.event list
(** [pid] distinguishes runs when several traces are merged (default
    0).  Attempts still open at the end of the stream — transactions
    that failed with a raised exception — are closed at the last seen
    step with outcome ["unfinished"]. *)

val to_json : ?pid:int -> (int * Engine.event) list -> Tavcc_obs.Json.t
