(** Cross-validation of the static escalation analysis against the engine.

    The linter's ESC001 pass ({!Tavcc_analyze.Lint.escalation_sites})
    claims to predict every escalation deadlock (problem P3) rw-msg
    locking can produce.  This module puts the claim to the test: it runs
    concurrent single-instance workloads under {!Tavcc_cc.Rw_instance}
    with deadlock detection on, collects every [Ev_deadlock] cycle the
    engine reports, maps its member transactions back to their entry
    [(class, method)] sites, and diffs those against the predicted set.

    On a single shared instance the class locks of the scheme ([is]/[ix])
    are always compatible, so a transaction can only wait for the
    instance lock; a member of a wait cycle therefore holds [Read] and
    requests the [Write] conversion — precisely an escalation.  Every
    observed deadlock must then start from a predicted entry:
    [o_unpredicted] is the analyzer's false-negative set and must come
    back empty. *)

open Tavcc_model
open Tavcc_core

type outcome = {
  o_predicted : Site.t list;  (** the static ESC001 set, whole schema *)
  o_observed : Site.t list;  (** distinct entries involved in observed cycles *)
  o_unpredicted : Site.t list;  (** observed but not predicted — false negatives *)
  o_deadlocks : int;  (** cycles the engine resolved *)
  o_commits : int;
}

val sound : outcome -> bool
(** [o_unpredicted = []]. *)

val run_single_instance :
  ?seed:int ->
  ?yield_on_access:bool ->
  an:Analysis.t ->
  cls:Name.Class.t ->
  meths:Name.Method.t list ->
  unit ->
  outcome
(** One transaction per entry in [meths] (ids in order), all sending to a
    single fresh instance of [cls] with argument [1], under rw-msg
    locking with [Detect].  Replays are deterministic in [seed]. *)

val run_e4 : ?seed:int -> ?txns:int -> levels:int -> unit -> outcome
(** The escalation workload of bench E4: {!Workload.chain_schema}'s
    reader-then-writer cascade, [txns] transactions cycling through the
    entry points [m0 .. m{levels}] (so directly-writing and escalating
    entries are both represented) on one shared instance. *)

val pp_outcome : Format.formatter -> outcome -> unit
