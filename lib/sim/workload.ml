open Tavcc_model
open Tavcc_lang
module CN = Name.Class
module MN = Name.Method
module FN = Name.Field

type schema_params = {
  sp_depth : int;
  sp_fanout : int;
  sp_shared_methods : int;
  sp_own_methods : int;
  sp_fields : int;
  sp_reads : int;
  sp_writes : int;
  sp_selfcalls : int;
  sp_override_prob : float;
}

let default_params =
  {
    sp_depth = 3;
    sp_fanout = 2;
    sp_shared_methods = 4;
    sp_own_methods = 2;
    sp_fields = 3;
    sp_reads = 2;
    sp_writes = 1;
    sp_selfcalls = 1;
    sp_override_prob = 0.5;
  }

let field_name cls i = FN.of_string (Printf.sprintf "x_%s_%d" (CN.to_string cls) i)
let shared_method i = MN.of_string (Printf.sprintf "g%d" i)
let own_method cls i = MN.of_string (Printf.sprintf "o_%s_%d" (CN.to_string cls) i)

(* var t := f + p1;  — a read of field [f]. *)
let read_stmt n f = Ast.Var (Printf.sprintf "t%d" n, Ast.Binop (Ast.Add, Ast.Ident (FN.to_string f), Ast.Ident "p1"))

(* f := f + p1;  — a write (and read) of field [f]. *)
let write_stmt f =
  Ast.Assign (FN.to_string f, Ast.Binop (Ast.Add, Ast.Ident (FN.to_string f), Ast.Ident "p1"))

let self_send ?prefix m =
  Ast.Send_stmt
    { Ast.msg_prefix = prefix; msg_name = m; msg_args = [ Ast.Ident "p1" ]; msg_recv = Ast.Rself;
      msg_pos = None }

let pick_fields rng fields n =
  if fields = [] then []
  else List.init n (fun _ -> Rng.pick rng fields)

(* Body of a method: some reads, some writes, some self-sends to shared
   methods of strictly smaller index (termination). *)
let method_body rng ~fields ~reads ~writes ~callable =
  let rs = pick_fields rng fields reads |> List.mapi read_stmt in
  let ws = pick_fields rng fields writes |> List.map write_stmt in
  let cs =
    if callable = [] then []
    else List.filteri (fun i _ -> i < List.length callable) (List.map self_send callable)
  in
  rs @ ws @ cs

let make_schema rng p =
  (* Class tree: breadth-first, [c0] the root. *)
  let counter = ref 0 in
  let fresh_class () =
    let c = CN.of_string (Printf.sprintf "k%d" !counter) in
    incr counter;
    c
  in
  let rec grow parent depth =
    if depth = 0 then []
    else
      List.concat_map
        (fun _ ->
          let c = fresh_class () in
          (c, Some parent) :: grow c (depth - 1))
        (List.init p.sp_fanout Fun.id)
  in
  let root = fresh_class () in
  let tree = (root, None) :: grow root (p.sp_depth - 1) in
  (* Visible fields accumulate along the chain of ancestors. *)
  let own_fields c = List.init p.sp_fields (fun i -> field_name c i) in
  let rec visible_fields c =
    let parent = List.assoc c tree in
    own_fields c @ match parent with Some pa -> visible_fields pa | None -> []
  in
  let decls =
    List.map
      (fun (c, parent) ->
        let fields = visible_fields c in
        let shared_defs =
          if parent = None then
            (* The root defines every shared method. *)
            List.init p.sp_shared_methods (fun j ->
                let callable =
                  pick_fields rng (List.init j shared_method) (min j p.sp_selfcalls)
                  |> List.sort_uniq MN.compare
                in
                {
                  Schema.m_name = shared_method j;
                  m_params = [ "p1" ];
                  m_body =
                    method_body rng ~fields ~reads:p.sp_reads ~writes:p.sp_writes ~callable;
                })
          else
            (* Subclasses override some shared methods as extensions. *)
            List.filter_map
              (fun j ->
                if Rng.chance rng p.sp_override_prob then
                  let prefix = Option.get parent in
                  Some
                    {
                      Schema.m_name = shared_method j;
                      m_params = [ "p1" ];
                      m_body =
                        self_send ~prefix (shared_method j)
                        :: method_body rng ~fields:(own_fields c) ~reads:p.sp_reads
                             ~writes:p.sp_writes ~callable:[];
                    }
                else None)
              (List.init p.sp_shared_methods Fun.id)
        in
        let own_defs =
          List.init p.sp_own_methods (fun n ->
              let callable =
                pick_fields rng (List.init p.sp_shared_methods shared_method)
                  (min p.sp_shared_methods p.sp_selfcalls)
                |> List.sort_uniq MN.compare
              in
              {
                Schema.m_name = own_method c n;
                m_params = [ "p1" ];
                m_body = method_body rng ~fields ~reads:p.sp_reads ~writes:p.sp_writes ~callable;
              })
        in
        {
          Schema.c_name = c;
          c_parents = (match parent with Some pa -> [ pa ] | None -> []);
          c_fields = List.map (fun f -> (f, Value.Tint)) (own_fields c);
          c_methods = shared_defs @ own_defs;
        })
      tree
  in
  match Schema.build decls with
  | Ok s -> s
  | Error e -> failwith (Format.asprintf "Workload.make_schema: %a" Schema.pp_error e)

let build_exn decls =
  match Schema.build decls with
  | Ok s -> s
  | Error e -> failwith (Format.asprintf "Workload schema: %a" Schema.pp_error e)

let chain_schema ~levels =
  let f = FN.of_string "acc" in
  let m j = MN.of_string (Printf.sprintf "m%d" j) in
  let body j =
    if j = 0 then [ write_stmt f ]
    else [ read_stmt 0 f; self_send (m (j - 1)) ]
  in
  build_exn
    [
      {
        Schema.c_name = CN.of_string "chain";
        c_parents = [];
        c_fields = [ (f, Value.Tint) ];
        c_methods =
          List.init (levels + 1) (fun j ->
              { Schema.m_name = m j; m_params = [ "p1" ]; m_body = body j });
      };
    ]

let pseudo_conflict_schema () =
  let base = CN.of_string "base" in
  let sub = CN.of_string "sub" in
  let fb i = FN.of_string (Printf.sprintf "b%d" i) in
  let fs i = FN.of_string (Printf.sprintf "s%d" i) in
  build_exn
    [
      {
        Schema.c_name = base;
        c_parents = [];
        (* [pk] plays the primary key in the relational comparison; the
           writers below leave it alone so the pseudo-conflict is pure
           (cf. the paper's key-field remark in sec. 5.2). *)
        c_fields = [ (FN.of_string "pk", Value.Tint); (fb 0, Value.Tint); (fb 1, Value.Tint) ];
        c_methods =
          [
            {
              Schema.m_name = MN.of_string "wbase";
              m_params = [ "p1" ];
              m_body = [ read_stmt 0 (fb 1); write_stmt (fb 0) ];
            };
            {
              Schema.m_name = MN.of_string "rbase";
              m_params = [ "p1" ];
              m_body = [ read_stmt 0 (fb 0); read_stmt 1 (fb 1) ];
            };
          ];
      };
      {
        Schema.c_name = sub;
        c_parents = [ base ];
        c_fields = [ (fs 0, Value.Tint); (fs 1, Value.Tint) ];
        c_methods =
          [
            {
              Schema.m_name = MN.of_string "wsub";
              m_params = [ "p1" ];
              m_body = [ read_stmt 0 (fs 1); write_stmt (fs 0) ];
            };
          ];
      };
    ]

let recursive_cluster_schema ~methods =
  let f i = FN.of_string (Printf.sprintf "r%d" i) in
  let m i = MN.of_string (Printf.sprintf "c%d" i) in
  let n = max 2 methods in
  build_exn
    [
      {
        Schema.c_name = CN.of_string "cluster";
        c_parents = [];
        c_fields = List.init n (fun i -> (f i, Value.Tint));
        c_methods =
          List.init n (fun i ->
              {
                Schema.m_name = m i;
                m_params = [ "p1" ];
                m_body =
                  [
                    write_stmt (f i);
                    self_send (m ((i + 1) mod n));
                    (* a chord to make the graph more than a bare ring *)
                    self_send (m ((i + (n / 2)) mod n));
                  ];
              });
      };
    ]

let wide_schema ~fields ~touched =
  let f i = FN.of_string (Printf.sprintf "w%d" i) in
  let touched = min touched fields in
  build_exn
    [
      {
        Schema.c_name = CN.of_string "wide";
        c_parents = [];
        c_fields = List.init fields (fun i -> (f i, Value.Tint));
        c_methods =
          [
            {
              Schema.m_name = MN.of_string "touch";
              m_params = [ "p1" ];
              m_body = List.init touched (fun i -> write_stmt (f i));
            };
            {
              Schema.m_name = MN.of_string "probe";
              m_params = [ "p1" ];
              m_body = [ read_stmt 0 (f (fields - 1)) ];
            };
          ];
      };
    ]

let slice_schema ?(readers = 0) ~methods ~work () =
  let f i = FN.of_string (Printf.sprintf "s%d" i) in
  let n = max 1 methods in
  let w = max 1 work in
  build_exn
    [
      {
        Schema.c_name = CN.of_string "grid";
        c_parents = [];
        c_fields = List.init n (fun i -> (f i, Value.Tint));
        c_methods =
          List.init n (fun i ->
              {
                Schema.m_name = MN.of_string (Printf.sprintf "u%d" i);
                m_params = [ "p1" ];
                (* [work] read-modify-writes of the method's own field:
                   a critical section long enough to measure, touching
                   nothing anyone else's slice touches. *)
                m_body = List.init w (fun _ -> write_stmt (f i));
              })
          @ List.init readers (fun i ->
                {
                  Schema.m_name = MN.of_string (Printf.sprintf "r%d" i);
                  m_params = [ "p1" ];
                  (* write-free: snapshot-eligible under mvcc-tav *)
                  m_body = List.init w (fun k -> read_stmt k (f (i mod n)));
                });
      };
    ]

let grid_methods store ~prefix =
  let grid = CN.of_string "grid" in
  Schema.methods (Store.schema store) grid
  |> List.filter (fun m -> String.length (MN.to_string m) > 0 && (MN.to_string m).[0] = prefix)

let slice_jobs rng store ~txns ~actions_per_txn ~hot_instances =
  let grid = CN.of_string "grid" in
  let ext = Array.of_list (Store.extent store grid) in
  let n = Array.length ext in
  if n = 0 then invalid_arg "Workload.slice_jobs: no grid instances";
  let hot = max 1 (min hot_instances n) in
  let slices =
    match grid_methods store ~prefix:'u' with
    | [] -> invalid_arg "Workload.slice_jobs: grid has no methods"
    | ms -> Array.of_list ms
  in
  List.init txns (fun i ->
      let id = i + 1 in
      let meth = slices.(i mod Array.length slices) in
      ( id,
        List.init actions_per_txn (fun _ ->
            Tavcc_cc.Exec.Call
              (ext.(Rng.int rng hot), meth, [ Value.Vint (Rng.int rng 100) ])) ))

let mixed_slice_jobs rng store ~txns ~actions_per_txn ~hot_instances ~read_frac =
  let grid = CN.of_string "grid" in
  let ext = Array.of_list (Store.extent store grid) in
  let n = Array.length ext in
  if n = 0 then invalid_arg "Workload.mixed_slice_jobs: no grid instances";
  let hot = max 1 (min hot_instances n) in
  let writers = Array.of_list (grid_methods store ~prefix:'u') in
  let readers = Array.of_list (grid_methods store ~prefix:'r') in
  if Array.length writers = 0 then invalid_arg "Workload.mixed_slice_jobs: no writer methods";
  if read_frac > 0. && Array.length readers = 0 then
    invalid_arg "Workload.mixed_slice_jobs: read_frac > 0 but the schema has no readers";
  List.init txns (fun i ->
      let id = i + 1 in
      let pool = if read_frac > 0. && Rng.chance rng read_frac then readers else writers in
      let meth = pool.(i mod Array.length pool) in
      ( id,
        List.init actions_per_txn (fun _ ->
            Tavcc_cc.Exec.Call
              (ext.(Rng.int rng hot), meth, [ Value.Vint (Rng.int rng 100) ])) ))

let populate store ~per_class =
  let schema = Store.schema store in
  List.iter
    (fun c ->
      for _ = 1 to per_class do
        ignore (Store.new_instance store c)
      done)
    (Schema.classes schema)

let random_jobs rng store ~txns ~actions_per_txn ~extent_prob ~hot_instances ~hot_prob =
  let schema = Store.schema store in
  let classes = Schema.classes schema in
  let all_instances = List.concat_map (fun c -> Store.extent store c) classes in
  let all = Array.of_list all_instances in
  let n = Array.length all in
  if n = 0 then invalid_arg "Workload.random_jobs: empty store";
  let hot = min hot_instances n in
  let pick_instance () =
    if hot > 0 && Rng.chance rng hot_prob then all.(Rng.int rng hot)
    else all.(Rng.int rng n)
  in
  let action () =
    if Rng.chance rng extent_prob then
      let cls = Rng.pick rng classes in
      let meth = Rng.pick rng (Schema.methods schema cls) in
      Tavcc_cc.Exec.Call_extent
        { cls; deep = Rng.bool rng; meth; args = [ Value.Vint (Rng.int rng 100) ] }
    else
      let oid = pick_instance () in
      let cls = Store.class_of store oid in
      let meth = Rng.pick rng (Schema.methods schema cls) in
      Tavcc_cc.Exec.Call (oid, meth, [ Value.Vint (Rng.int rng 100) ])
  in
  List.init txns (fun i -> (i + 1, List.init actions_per_txn (fun _ -> action ())))
