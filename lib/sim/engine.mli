(** Deterministic concurrent-execution engine.

    Transactions run as cooperative fibers (OCaml 5 effects).  A fiber
    executes its actions through {!Tavcc_cc.Exec.perform}; when a lock
    request must wait, the fiber parks and the seeded scheduler picks
    another runnable fiber, so executions interleave exactly at the points
    a real lock manager would switch — and, optionally, at every field
    access, which is what the serializability property tests need.

    Deadlocks are detected on every blocking request by cycle search in
    the incrementally maintained waits-for graph, starting from the newly
    blocked transaction only (every new edge is incident to it); the
    youngest transaction of the cycle is aborted (undo log replayed, locks
    released) and restarted from scratch, as the protocols of the paper
    assume.  Everything is driven by a seed: replays are bit-for-bit
    identical. *)

open Tavcc_lang
open Tavcc_cc

(** How blocking requests are kept from deadlocking.

    [Detect] is the classical approach assumed by the paper's protocols:
    search the waits-for graph on every blocking request and abort the
    youngest member of a cycle.  The three prevention policies are
    standard comparisons: [Wound_wait] lets an older requester abort the
    younger holders in its way; [Wait_die] kills a younger requester
    instead of letting it wait behind an older holder; [No_wait] aborts
    the requester on any conflict.  Births survive restarts, so both
    priority policies guarantee progress.  [Timeout n] parks the waiter
    and aborts it after [n] scheduler steps without a grant. *)
type deadlock_policy =
  | Detect
  | Wound_wait
  | Wait_die
  | No_wait
  | Timeout of int

type config = {
  seed : int;
  yield_on_access : bool;
      (** reschedule after every field read/write (finer interleavings,
          slower) *)
  max_restarts : int;  (** per transaction; beyond it the run fails *)
  max_steps : int;  (** interpreter fuel per action *)
  policy : deadlock_policy;
  trace : bool;  (** record an {!event} log of the run *)
}

(** Observable milestones of a run, in execution order (only recorded
    with [trace = true]). *)
type event =
  | Ev_begin of int
  | Ev_blocked of int * Tavcc_lock.Lock_table.req
  | Ev_resumed of int  (** unparked after a wait *)
  | Ev_deadlock of int list * int  (** cycle, chosen victim *)
  | Ev_wound of int * int  (** wounding txn, victim *)
  | Ev_died of int  (** wait-die / no-wait self-abort *)
  | Ev_timeout of int
  | Ev_abort of int
  | Ev_commit of int

val pp_event : Format.formatter -> event -> unit

val default_config : config
(** seed 42, no access yields, 100 restarts, [Detect]. *)

type result = {
  commits : int;
  deadlocks : int;  (** deadlock cycles resolved *)
  aborts : int;  (** transactions aborted (then restarted) *)
  restarts : int;  (** total restart count, = aborts unless a txn died *)
  lock_requests : int;
  lock_waits : int;
  lock_conversions : int;
  scheduler_steps : int;
  history : Tavcc_txn.History.t;
  failed : (int * string) list;
      (** transactions that exceeded [max_restarts] or raised *)
  events : event list;  (** empty unless [config.trace] *)
}

val serializable : result -> bool
(** Conflict serializability of the committed projection (the oracle). *)

val run :
  ?config:config ->
  scheme:Scheme.t ->
  store:Ast.body Tavcc_model.Store.t ->
  jobs:(int * Exec.action list) list ->
  unit ->
  result
(** [jobs] are (transaction id, actions) pairs; ids must be distinct and
    positive.  The engine creates the scheme's lock table, runs every job
    to commit (restarting deadlock victims) and returns the metrics and
    the recorded history. *)
