(** Deterministic concurrent-execution engine.

    Transactions run as cooperative fibers (OCaml 5 effects).  A fiber
    executes its actions through {!Tavcc_cc.Exec.perform}; when a lock
    request must wait, the fiber parks and the seeded scheduler picks
    another runnable fiber, so executions interleave exactly at the points
    a real lock manager would switch — and, optionally, at every field
    access, which is what the serializability property tests need.

    Deadlocks are detected on every blocking request by cycle search in
    the incrementally maintained waits-for graph, starting from the newly
    blocked transaction only (every new edge is incident to it); the
    youngest transaction of the cycle is aborted (undo log replayed, locks
    released) and restarted from scratch, as the protocols of the paper
    assume.  Everything is driven by a seed: replays are bit-for-bit
    identical. *)

open Tavcc_lang
open Tavcc_cc

(** How blocking requests are kept from deadlocking.

    [Detect] is the classical approach assumed by the paper's protocols:
    search the waits-for graph on every blocking request and abort the
    youngest member of a cycle.  The three prevention policies are
    standard comparisons: [Wound_wait] lets an older requester abort the
    younger holders in its way; [Wait_die] kills a younger requester
    instead of letting it wait behind an older holder; [No_wait] aborts
    the requester on any conflict.  Births survive restarts, so both
    priority policies guarantee progress.  [Timeout n] parks the waiter
    and aborts it after [n] scheduler steps without a grant. *)
type deadlock_policy =
  | Detect
  | Wound_wait
  | Wait_die
  | No_wait
  | Timeout of int

val policy_name : deadlock_policy -> string
(** The CLI spelling: "detect", "wound-wait", ... *)

(** Observable milestones of a run, in execution order. *)
type event =
  | Ev_begin of int
  | Ev_blocked of int * Tavcc_lock.Lock_table.req
  | Ev_resumed of int  (** unparked after a wait *)
  | Ev_deadlock of int list * int  (** cycle, chosen victim *)
  | Ev_wound of int * int  (** wounding txn, victim *)
  | Ev_died of int  (** wait-die / no-wait self-abort *)
  | Ev_timeout of int
  | Ev_forced_abort of int  (** chaos-injected abort ({!hooks}) *)
  | Ev_abort of int
  | Ev_commit of int

val pp_event : Format.formatter -> event -> unit

type sink = (int * event) Tavcc_obs.Sink.t
(** Where the engine's event stream goes; each event is stamped with the
    scheduler step at which it happened.  {!Tavcc_obs.Sink.null} records
    nothing (the default — a single branch per event),
    [Tavcc_obs.Sink.ring n] keeps the last [n] events (returned in
    {!result.events}), [Tavcc_obs.Sink.callback f] streams them out. *)

(** The raw data accesses of a run, in execution order, with the images a
    write-ahead logger needs.  Unlike {!Tavcc_txn.History} ops, these are
    streamed as they happen (not recorded), carry values, and are the
    bridge by which the chaos harness shadows a run into a
    {!Tavcc_recovery}-style transaction manager. *)
type access =
  | Ob_begin of int  (** attempt begins (also on each restart) *)
  | Ob_read of int * Tavcc_model.Oid.t * Tavcc_model.Name.Field.t
  | Ob_write of {
      txn : int;
      oid : Tavcc_model.Oid.t;
      field : Tavcc_model.Name.Field.t;
      before : Tavcc_model.Value.t;
      after : Tavcc_model.Value.t;
    }
  | Ob_commit of int
  | Ob_abort of int

(** Deterministic intervention points for fault injection and schedule
    exploration.  All hooks run synchronously inside the scheduler loop,
    so a pure hook keeps the run bit-for-bit replayable. *)
type hooks = {
  hk_pick : (step:int -> ready:int list -> int) option;
      (** chooses the next transaction to run from the (non-empty,
          job-ordered) ready list; when absent the seeded RNG picks.  The
          returned id must be in [ready]. *)
  hk_forced_abort : (step:int -> eligible:int list -> int list) option;
      (** consulted once per scheduler iteration with the transactions
          that can be externally aborted right now (parked or yielded,
          holding a live continuation); every returned eligible id is
          aborted and restarted exactly as a deadlock victim would be,
          after an {!Ev_forced_abort} event *)
  hk_on_grant : (Tavcc_lock.Lock_table.req -> unit) option;
      (** forwarded to {!Tavcc_lock.Lock_table.create}'s [on_grant] *)
  hk_observe : (access -> unit) option;
      (** streams every begin/read/write/commit/abort, with write images *)
  hk_probe :
    (txn:int -> holds:(Tavcc_lock.Resource.t -> (int * bool) list) -> Exec.probe) option;
      (** builds a per-transaction {!Tavcc_cc.Exec.probe} at its first
          attempt; [holds] queries the engine's lock table for the
          (mode, hier) pairs the transaction holds on a resource at the
          instant of the probed access.  This is how the sanitizer's
          {!Tavcc_sanitize.Recorder} and {!Tavcc_sanitize.Monitor}
          observe an engine run. *)
}

val no_hooks : hooks
(** All five absent: the engine behaves exactly as without chaos. *)

type config = {
  seed : int;
  yield_on_access : bool;
      (** reschedule after every field read/write (finer interleavings,
          slower) *)
  max_restarts : int;  (** per transaction; beyond it the run fails *)
  max_steps : int;  (** interpreter fuel per action *)
  policy : deadlock_policy;
  sink : sink;
  hooks : hooks;
  metrics : Tavcc_obs.Metrics.t option;
      (** when set, the run records engine counters ([engine.commits],
          [engine.aborts], [engine.deadlocks], [engine.wounds],
          [engine.died], [engine.timeouts], [engine.restarts],
          [engine.steps] and [engine.steps.<policy>]), the
          [engine.attempt_steps] histogram (scheduler steps from each
          attempt's begin to its commit or abort) and, through the lock
          table it creates, the [lock.*] metrics of
          {!Tavcc_lock.Lock_table.create} with the step counter as the
          clock *)
}

val default_config : config
(** seed 42, no access yields, 100 restarts, [Detect], null sink,
    {!no_hooks}, no metrics. *)

type result = {
  commits : int;
  deadlocks : int;  (** deadlock cycles resolved *)
  aborts : int;  (** transactions aborted (then restarted) *)
  restarts : int;  (** total restart count, = aborts unless a txn died *)
  lock_requests : int;
  lock_waits : int;
  lock_conversions : int;
  scheduler_steps : int;
  history : Tavcc_txn.History.t;
  failed : (int * string) list;
      (** transactions that exceeded [max_restarts] or raised *)
  events : (int * event) list;
      (** the (step, event) contents of a ring sink, oldest first; empty
          for null and callback sinks *)
  lock_stats : Tavcc_lock.Lock_table.stats;
      (** snapshot of the run's complete lock-table statistics — the
          [lock_requests]/[lock_waits]/[lock_conversions] fields above
          are projections of it, kept for compatibility *)
}

val serializable : result -> bool
(** Conflict serializability of the committed projection (the oracle). *)

val run :
  ?config:config ->
  scheme:Scheme.t ->
  store:Ast.body Tavcc_model.Store.t ->
  jobs:(int * Exec.action list) list ->
  unit ->
  result
(** [jobs] are (transaction id, actions) pairs; ids must be distinct and
    positive.  The engine creates the scheme's lock table, runs every job
    to commit (restarting deadlock victims) and returns the metrics and
    the recorded history. *)
