open Tavcc_model
open Tavcc_core
open Tavcc_lock

let scheme an =
  let schema = Analysis.schema an in
  let classify = Scheme.writes_transitively in
  (* Intention locks on the whole ancestor chain, most general first. *)
  let intents ctx cls writer =
    List.iter
      (fun a ->
        ctx.Scheme.acquire
          (Scheme.req ~txn:ctx.Scheme.txn (Resource.Class a)
             (if writer then Compat.ix else Compat.is_)))
      (List.rev (Schema.linearization schema cls))
  in
  let on_top_send ctx oid cls m =
    let writer = classify an cls m in
    intents ctx cls writer;
    ctx.Scheme.acquire
      (Scheme.req ~txn:ctx.Scheme.txn (Resource.Instance oid)
         (if writer then Compat.write else Compat.read))
  in
  {
    Scheme.name = "rw-impl";
    descr = "ORION-style implicit read/write locking on the inheritance graph";
    conflict = Rw_instance.rw_conflict;
    on_begin = Scheme.no_begin;
    on_top_send;
    on_self_send = (fun _ _ _ _ -> ());
    on_read = (fun _ _ _ _ -> ());
    on_write = (fun _ _ _ _ -> ());
    on_extent =
      (fun ctx cls ~deep:_ ~pred:_ m ->
        if Schema.resolve schema cls m = None then ()
        else
        (* One lock on the scanned root covers the domain implicitly;
           ancestors above it take intentions. *)
        let writer = classify an cls m in
        List.iter
          (fun a ->
            ctx.Scheme.acquire
              (Scheme.req ~txn:ctx.Scheme.txn (Resource.Class a)
                 (if writer then Compat.ix else Compat.is_)))
          (List.rev (Schema.ancestors schema cls));
        ctx.Scheme.acquire
          (Scheme.req ~txn:ctx.Scheme.txn ~hier:true (Resource.Class cls)
             (if writer then Compat.x else Compat.s)));
    on_some_of_domain =
      (fun ctx cls m ->
        if Schema.resolve schema cls m <> None then intents ctx cls (classify an cls m));
    locks_instances_on_extent = false;
    mvcc = None;
  }
