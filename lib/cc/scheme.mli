(** The pluggable concurrency-control scheme interface.

    A scheme is a bundle of callbacks invoked by the executor at the
    points sec. 5.2 of the paper distinguishes: the arrival of a message at
    an instance (from outside — the initial call or a cross-object send),
    self-directed messages, raw field accesses, and the three collective
    access shapes (all instances of a class, some instances of a domain,
    all instances of a domain).  Each callback may acquire locks through
    the context; the context's [acquire] blocks until the lock is granted
    (in simulations) or raises (in the no-wait evaluator).

    The five schemes of the repository:
    - {!Rw_instance.scheme}: read/write instance locks taken at {e every}
      message, self-sends included — exhibits problems P2 and P3;
    - {!Rw_toponly.scheme}: read/write instance locks at top messages only,
      classified by TAV — isolates problem P4;
    - {!Tav_modes.scheme}: the paper's contribution;
    - {!Field_runtime.scheme}: Agrawal & El Abbadi run-time field locking;
    - {!Relational.scheme}: the sec.-3 relational decomposition. *)

open Tavcc_model
open Tavcc_core
open Tavcc_lock

type ctx = {
  txn : Tavcc_txn.Txn.t;
  acquire : Lock_table.req -> unit;
      (** returns once the lock is held; the simulator parks the fiber
          while it waits *)
}

(** {2 Multi-version hooks}

    A scheme that maintains a versioned store (the [mvcc-tav] scheme of
    {!Tavcc_mvcc.Mvcc_tav}) exposes it through {!mvcc}; both engines open
    an {!mvcc_session} per transaction attempt and drive its two-step
    commit.  Schemes with [mvcc = None] are executed exactly as before. *)

type txn_mode =
  | Mv_pessimistic  (** plain strict-2PL locking; writes also publish versions *)
  | Mv_snapshot
      (** read-only: every field read resolves against the snapshot
          timestamp, no locks are taken, the transaction cannot abort *)
  | Mv_optimistic
      (** reads from the snapshot, writes buffered; commit acquires the
          deferred locks, validates the read/write set and publishes *)

val mode_label : txn_mode -> string

exception Validation_failed
(** Raised by {!mvcc_session.ms_precommit} when optimistic validation
    finds a version newer than the snapshot; the engines treat it like a
    deadlock abort (undo, release, restart with backoff). *)

type mvcc_session = {
  ms_mode : txn_mode;
  ms_snapshot : int;  (** commit timestamp the reads are consistent with *)
  ms_read : Oid.t -> Name.Field.t -> Value.t;
      (** versioned field read (snapshot/optimistic modes only); logs the
          version read for the serializability oracle *)
  ms_write : Oid.t -> Name.Field.t -> before:Value.t -> Value.t -> bool;
      (** called {e before} a field write takes effect; [true] means the
          session absorbed the write (buffered — skip the in-place store
          write, undo log and history record), [false] means proceed
          in-place (the session captured the base version) *)
  ms_precommit : ctx -> write:(Oid.t -> Name.Field.t -> Value.t -> unit) -> unit;
      (** optimistic: acquire the deferred locks through [ctx], validate,
          and write the buffered values back through [write] (which must
          undo-log and apply each); no-op for the other modes.
          @raise Validation_failed when validation fails *)
  ms_publish : unit -> int option;
      (** point of no return: publish this transaction's versions and
          close the snapshot; returns the commit timestamp when versions
          were published.  Must not raise. *)
  ms_abort : unit -> unit;
      (** drop buffers, close the snapshot, feed the contention stats *)
  ms_reads : unit -> (Oid.t * Name.Field.t * int) list;
      (** the versioned reads performed: (oid, field, version timestamp),
          recorded as {!Tavcc_txn.History.Snapshot_read} at commit *)
}

type mvcc = {
  mv_begin :
    ctx ->
    read:(Oid.t -> Name.Field.t -> Value.t) ->
    class_of:(Oid.t -> Name.Class.t) ->
    Action.t list ->
    mvcc_session;
      (** classify the transaction's actions and open a session; [read]
          is a live (locked-slot) field read the version store uses to
          capture base versions lazily *)
  mv_run_begin : unit -> unit;
      (** reset run-scoped state (version chains, contention counters);
          engines call it once at the start of a run *)
  mv_dump : unit -> (Oid.t * Name.Field.t * (int * Value.t) list) list;
      (** every version chain, newest first, as (commit ts, value) — the
          chaos harness's coherence oracle *)
}

type t = {
  name : string;
  descr : string;
  conflict : Lock_table.req -> Lock_table.req -> bool;
      (** the conflict relation this scheme's lock table must be created
          with *)
  on_begin : ctx -> class_of:(Oid.t -> Name.Class.t) -> Action.t list -> unit;
      (** sees the transaction's whole action list before anything runs;
          no-op for the incremental schemes, the acquisition point for
          conservative preclaiming ({!Tav_preclaim}) *)
  on_top_send : ctx -> Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  on_self_send : ctx -> Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  on_read : ctx -> Oid.t -> Name.Class.t -> Name.Field.t -> unit;
  on_write : ctx -> Oid.t -> Name.Class.t -> Name.Field.t -> unit;
  on_extent :
    ctx -> Name.Class.t -> deep:bool -> pred:Tavcc_lock.Pred.t option -> Name.Method.t -> unit;
      (** class-level locks before iterating a whole extent ([deep] spans
          the domain rooted at the class; [pred] restricts a range scan —
          schemes without predicate support must ignore it and cover the
          whole extent) *)
  on_some_of_domain : ctx -> Name.Class.t -> Name.Method.t -> unit;
      (** class-level intention locks before touching {e some} instances
          of a domain *)
  locks_instances_on_extent : bool;
      (** true when extent iteration must still lock each instance
          individually (schemes without hierarchical class locks) *)
  mvcc : mvcc option;
      (** multi-version hooks; [None] for the single-version schemes *)
}

val req :
  txn:Tavcc_txn.Txn.t -> ?hier:bool -> ?pred:Tavcc_lock.Pred.t -> Resource.t -> int ->
  Lock_table.req
(** Convenience constructor for requests. *)

val no_begin : ctx -> class_of:(Tavcc_model.Oid.t -> Name.Class.t) -> Action.t list -> unit
(** The no-op begin hook used by the incremental schemes. *)

val mode_name : t -> Lock_table.req -> string
(** Human-readable mode for tracing; scheme-dependent. *)

(** {2 Method classification helpers (for the read/write baselines)} *)

val writes_directly : Analysis.t -> Name.Class.t -> Name.Method.t -> bool
(** Does the method's own code assign some field (DAV contains a
    [Write])?  This is how a per-message reader/writer classifier sees the
    method — m1 of the paper's example is a {e reader} by this measure. *)

val writes_transitively : Analysis.t -> Name.Class.t -> Name.Method.t -> bool
(** Does the TAV contain a [Write]?  The "announce the most exclusive mode
    up front" classification. *)
