open Tavcc_lock

let scheme _an =
  let conflict (held : Lock_table.req) (req : Lock_table.req) =
    match held.Lock_table.r_res with
    | Resource.Field _ | Resource.Meth _ ->
        not (Compat.compatible Compat.rw held.r_mode req.r_mode)
    | Resource.Instance _ | Resource.Class _ | Resource.Fragment _ | Resource.Relation _ ->
        false
  in
  let lock_method ctx _oid cls m =
    ctx.Scheme.acquire (Scheme.req ~txn:ctx.Scheme.txn (Resource.Meth (cls, m)) Compat.read)
  in
  let lock_field mode ctx oid _cls f =
    ctx.Scheme.acquire (Scheme.req ~txn:ctx.Scheme.txn (Resource.Field (oid, f)) mode)
  in
  {
    Scheme.name = "field-rt";
    descr = "run-time field locking (Agrawal & El Abbadi)";
    conflict;
    on_begin = Scheme.no_begin;
    on_top_send = lock_method;
    on_self_send = lock_method;
    on_read = lock_field Compat.read;
    on_write = lock_field Compat.write;
    on_extent = (fun _ _ ~deep:_ ~pred:_ _ -> ());
    on_some_of_domain = (fun _ _ _ -> ());
    locks_instances_on_extent = true;
    mvcc = None;
  }
