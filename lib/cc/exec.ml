open Tavcc_model
open Tavcc_lang

type action = Action.t =
  | Call of Oid.t * Name.Method.t * Value.t list
  | Call_some of {
      root : Name.Class.t;
      targets : Oid.t list;
      meth : Name.Method.t;
      args : Value.t list;
    }
  | Call_extent of { cls : Name.Class.t; deep : bool; meth : Name.Method.t; args : Value.t list }
  | Call_range of {
      cls : Name.Class.t;
      deep : bool;
      pred : Tavcc_lock.Pred.t;
      meth : Name.Method.t;
      args : Value.t list;
    }

let pp_action = Action.pp

let begin_txn ~scheme ~store ~ctx actions =
  scheme.Scheme.on_begin ctx ~class_of:(Store.class_of store) actions

type probe = {
  p_top_send : Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  p_self_send : Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  p_enter :
    Oid.t -> Name.Class.t -> resolve_at:Name.Class.t -> defining:Name.Class.t ->
    Name.Method.t -> unit;
  p_exit : Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  p_read : Oid.t -> Name.Class.t -> Name.Field.t -> versioned:bool -> unit;
  p_write : Oid.t -> Name.Class.t -> Name.Field.t -> versioned:bool -> unit;
}

let null_probe =
  {
    p_top_send = (fun _ _ _ -> ());
    p_self_send = (fun _ _ _ -> ());
    p_enter = (fun _ _ ~resolve_at:_ ~defining:_ _ -> ());
    p_exit = (fun _ _ _ -> ());
    p_read = (fun _ _ _ ~versioned:_ -> ());
    p_write = (fun _ _ _ ~versioned:_ -> ());
  }

let perform ~scheme ~store ~ctx ?mv ?(probe = null_probe) ?(on_read = fun _ _ -> ())
    ?(on_write = fun _ _ -> ())
    ?(on_update = fun _ _ ~before:_ ~after:_ -> ()) ?(yield = fun () -> ()) ?max_steps action =
  (* When set, the next top send to this oid is the root of an extent call
     covered by a hierarchical class lock: skip its instance locking. *)
  let skip_root = ref None in
  (* Sessions whose reads must resolve against a snapshot rather than the
     live store slots. Pessimistic sessions read in place (their locks make
     the live slot the right version). *)
  let versioned =
    match mv with
    | Some s when s.Scheme.ms_mode <> Scheme.Mv_pessimistic -> Some s
    | _ -> None
  in
  let hooks =
    {
      Interp.h_top_send =
        (fun oid cls m ->
          (match !skip_root with
          | Some o when Oid.equal o oid -> skip_root := None
          | _ -> scheme.Scheme.on_top_send ctx oid cls m);
          (* probes run with the scheme's locks already held *)
          probe.p_top_send oid cls m);
      h_self_send =
        (fun oid cls m ->
          scheme.Scheme.on_self_send ctx oid cls m;
          probe.p_self_send oid cls m);
      h_read =
        (fun oid cls f ->
          scheme.Scheme.on_read ctx oid cls f;
          probe.p_read oid cls f ~versioned:(versioned <> None);
          on_read oid f;
          yield ());
      h_write =
        (fun oid cls f ~old v ->
          scheme.Scheme.on_write ctx oid cls f;
          probe.p_write oid cls f ~versioned:(versioned <> None);
          Tavcc_txn.Txn.log_write ctx.Scheme.txn oid f ~before:old;
          on_write oid f;
          on_update oid f ~before:old ~after:v;
          yield ());
      h_enter = probe.p_enter;
      h_exit = probe.p_exit;
      h_new =
        (fun _ cls ->
          (* Versioned (snapshot / optimistic) sessions are classified as
             creation-free; a [new] slipping through would mutate the live
             store outside the locking protocol. *)
          match versioned with
          | Some _ ->
              raise
                (Invalid_argument
                   (Format.asprintf "mvcc: 'new %a' inside a versioned transaction" Name.Class.pp
                      cls))
          | None -> ());
      h_read_value =
        Option.map (fun s oid _cls f -> s.Scheme.ms_read oid f) versioned;
      h_write_value =
        Option.map (fun s oid _cls f ~old v -> s.Scheme.ms_write oid f ~before:old v) mv;
    }
  in
  let call oid m args = ignore (Interp.call ~hooks ?max_steps store oid m args) in
  match action with
  | Call (oid, m, args) -> call oid m args
  | Call_some { root; targets; meth; args } ->
      scheme.Scheme.on_some_of_domain ctx root meth;
      List.iter (fun oid -> call oid meth args; yield ()) targets
  | Call_extent { cls; deep; meth; args } ->
      scheme.Scheme.on_extent ctx cls ~deep ~pred:None meth;
      let targets = if deep then Store.deep_extent store cls else Store.extent store cls in
      List.iter
        (fun oid ->
          if not scheme.Scheme.locks_instances_on_extent then skip_root := Some oid;
          call oid meth args;
          yield ())
        targets
  | Call_range { cls; deep; pred; meth; args } ->
      scheme.Scheme.on_extent ctx cls ~deep ~pred:(Some pred) meth;
      let candidates = if deep then Store.deep_extent store cls else Store.extent store cls in
      List.iter
        (fun oid ->
          let matches =
            match Tavcc_model.Schema.field_index (Store.schema store) (Store.class_of store oid)
                    pred.Tavcc_lock.Pred.field
            with
            | None -> false
            | Some _ -> Tavcc_lock.Pred.satisfies pred (Store.read store oid pred.Tavcc_lock.Pred.field)
          in
          if matches then begin
            if not scheme.Scheme.locks_instances_on_extent then skip_root := Some oid;
            call oid meth args;
            yield ()
          end)
        candidates
