open Tavcc_model
open Tavcc_core
open Tavcc_lock

(* Shared by the two read/write baselines: instance locks use the R/W
   matrix, class locks Gray's granularity modes. *)
let rw_conflict (held : Lock_table.req) (req : Lock_table.req) =
  match held.Lock_table.r_res with
  | Resource.Instance _ -> not (Compat.compatible Compat.rw held.r_mode req.r_mode)
  | Resource.Class _ -> not (Compat.compatible Compat.gray held.r_mode req.r_mode)
  | Resource.Field _ | Resource.Fragment _ | Resource.Relation _ | Resource.Meth _ -> false

let lock_message an ctx oid cls m ~classify =
  let writer = classify an cls m in
  ctx.Scheme.acquire
    (Scheme.req ~txn:ctx.Scheme.txn (Resource.Class cls) (if writer then Compat.ix else Compat.is_));
  ctx.Scheme.acquire
    (Scheme.req ~txn:ctx.Scheme.txn (Resource.Instance oid)
       (if writer then Compat.write else Compat.read))

let lock_extent an schema ctx cls ~deep ~pred m ~classify =
  ignore pred;
  let classes = if deep then Schema.domain schema cls else [ cls ] in
  let classes = List.filter (fun d -> Schema.resolve schema d m <> None) classes in
  List.iter
    (fun d ->
      let writer = classify an d m in
      ctx.Scheme.acquire
        (Scheme.req ~txn:ctx.Scheme.txn ~hier:true (Resource.Class d)
           (if writer then Compat.x else Compat.s)))
    classes

let lock_some an schema ctx cls m ~classify =
  List.iter
    (fun d ->
      if Schema.resolve schema d m <> None then
      let writer = classify an d m in
      ctx.Scheme.acquire
        (Scheme.req ~txn:ctx.Scheme.txn (Resource.Class d)
           (if writer then Compat.ix else Compat.is_)))
    (Schema.domain schema cls)

let scheme an =
  let schema = Analysis.schema an in
  let classify = Scheme.writes_directly in
  let lock = lock_message an ~classify in
  {
    Scheme.name = "rw-msg";
    descr = "read/write instance locks at every message (per-message control)";
    conflict = rw_conflict;
    on_begin = Scheme.no_begin;
    on_top_send = lock;
    (* The defining property of this baseline: self-sends re-control the
       instance, possibly escalating read to write. *)
    on_self_send = lock;
    on_read = (fun _ _ _ _ -> ());
    on_write = (fun _ _ _ _ -> ());
    on_extent =
      (fun ctx cls ~deep ~pred m ->
        (* A per-message scheme must classify extent scans transitively:
           with no per-instance announcement up front, the class lock is
           the only cover. *)
        lock_extent an schema ctx cls ~deep ~pred m ~classify:Scheme.writes_transitively);
    on_some_of_domain = (fun ctx cls m -> lock_some an schema ctx cls m ~classify);
    locks_instances_on_extent = true;
    mvcc = None;
  }
