open Tavcc_core

let scheme an =
  let schema = Analysis.schema an in
  let classify = Scheme.writes_transitively in
  {
    Scheme.name = "rw-top";
    descr = "read/write instance locks at top messages, classified by TAV";
    conflict = Rw_instance.rw_conflict;
    on_begin = Scheme.no_begin;
    on_top_send = Rw_instance.lock_message an ~classify;
    on_self_send = (fun _ _ _ _ -> ());
    on_read = (fun _ _ _ _ -> ());
    on_write = (fun _ _ _ _ -> ());
    on_extent =
      (fun ctx cls ~deep ~pred m -> Rw_instance.lock_extent an schema ctx cls ~deep ~pred m ~classify);
    on_some_of_domain = (fun ctx cls m -> Rw_instance.lock_some an schema ctx cls m ~classify);
    locks_instances_on_extent = false;
    mvcc = None;
  }
