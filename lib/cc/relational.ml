open Tavcc_model
open Tavcc_core
open Tavcc_lock
module CN = Name.Class

let declares_fields schema c =
  List.exists (fun fd -> CN.equal fd.Schema.f_owner c) (Schema.fields schema c)

let key_field schema cls =
  (* Most general field-declaring ancestor: last in the linearisation that
     declares fields; its first declared field is the primary key. *)
  let lin = List.rev (Schema.linearization schema cls) in
  List.find_map
    (fun c ->
      let own = List.filter (fun fd -> CN.equal fd.Schema.f_owner c) (Schema.fields schema cls) in
      match own with fd :: _ -> Some (c, fd.Schema.f_name) | [] -> None)
    lin

let fragments_of_tav schema cls tav =
  let mode_of_field f =
    match Schema.field_def schema cls f with
    | Some fd -> Some (fd.Schema.f_owner, Access_vector.get tav f)
    | None -> None
  in
  let base =
    List.fold_left
      (fun acc f ->
        match mode_of_field f with
        | Some (owner, m) ->
            let prev = Option.value ~default:Mode.Null (List.assoc_opt owner acc) in
            (owner, Mode.join prev m) :: List.remove_assoc owner acc
        | None -> acc)
      [] (Access_vector.fields tav)
  in
  let key_written =
    match key_field schema cls with
    | Some (_, kf) -> Mode.equal (Access_vector.get tav kf) Mode.Write
    | None -> false
  in
  let with_key =
    if not key_written then base
    else
      (* The key is the foreign key of every subclass relation: guard all
         field-declaring classes of the key owner's domain in write mode. *)
      match key_field schema cls with
      | None -> base
      | Some (owner, _) ->
          List.fold_left
            (fun acc c ->
              if declares_fields schema c then (c, Mode.Write) :: List.remove_assoc c acc
              else acc)
            base
            (Schema.domain schema owner)
  in
  with_key
  |> List.filter_map (fun (c, m) ->
         match m with
         | Mode.Null -> None
         | Mode.Read -> Some (c, false)
         | Mode.Write -> Some (c, true))
  |> List.sort (fun (a, _) (b, _) -> CN.compare a b)

let scheme an =
  let schema = Analysis.schema an in
  let conflict (held : Lock_table.req) (req : Lock_table.req) =
    match held.Lock_table.r_res with
    | Resource.Fragment _ -> not (Compat.compatible Compat.rw held.r_mode req.r_mode)
    | Resource.Relation _ -> not (Compat.compatible Compat.gray held.r_mode req.r_mode)
    | Resource.Instance _ | Resource.Class _ | Resource.Field _ | Resource.Meth _ -> false
  in
  let on_top_send ctx oid cls m =
    let tav = Analysis.tav an cls m in
    List.iter
      (fun (owner, writes) ->
        ctx.Scheme.acquire
          (Scheme.req ~txn:ctx.Scheme.txn (Resource.Relation owner)
             (if writes then Compat.ix else Compat.is_));
        ctx.Scheme.acquire
          (Scheme.req ~txn:ctx.Scheme.txn
             (Resource.Fragment (oid, owner))
             (if writes then Compat.write else Compat.read)))
      (fragments_of_tav schema cls tav)
  in
  let relations_of_classes classes m =
    (* Union of the fragment modes across the classes of the scope that
       understand the method. *)
    let classes = List.filter (fun e -> Schema.resolve schema e m <> None) classes in
    List.fold_left
      (fun acc e ->
        List.fold_left
          (fun acc (owner, writes) ->
            let prev = Option.value ~default:false (List.assoc_opt owner acc) in
            (owner, prev || writes) :: List.remove_assoc owner acc)
          acc
          (fragments_of_tav schema e (Analysis.tav an e m)))
      [] classes
    |> List.sort (fun (a, _) (b, _) -> CN.compare a b)
  in
  let on_extent ctx cls ~deep ~pred m =
    ignore pred;
    let classes = if deep then Schema.domain schema cls else [ cls ] in
    List.iter
      (fun (owner, writes) ->
        ctx.Scheme.acquire
          (Scheme.req ~txn:ctx.Scheme.txn ~hier:true (Resource.Relation owner)
             (if writes then Compat.x else Compat.s)))
      (relations_of_classes classes m)
  in
  let on_some_of_domain ctx cls m =
    List.iter
      (fun (owner, writes) ->
        ctx.Scheme.acquire
          (Scheme.req ~txn:ctx.Scheme.txn (Resource.Relation owner)
             (if writes then Compat.ix else Compat.is_)))
      (relations_of_classes (Schema.domain schema cls) m)
  in
  {
    Scheme.name = "relational";
    descr = "first-normal-form decomposition with tuple/relation R-W locks (sec. 3)";
    conflict;
    on_begin = Scheme.no_begin;
    on_top_send;
    on_self_send = (fun _ _ _ _ -> ());
    on_read = (fun _ _ _ _ -> ());
    on_write = (fun _ _ _ _ -> ());
    on_extent;
    on_some_of_domain;
    locks_instances_on_extent = false;
    mvcc = None;
  }
