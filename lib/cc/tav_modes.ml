open Tavcc_model
open Tavcc_core
open Tavcc_lock

let scheme an =
  let gm = Global_modes.build an in
  let schema = Analysis.schema an in
  let commute = Global_modes.commute gm in
  let conflict (held : Lock_table.req) (req : Lock_table.req) =
    match held.Lock_table.r_res with
    | Resource.Instance _ -> not (commute held.r_mode req.r_mode)
    | Resource.Class _ ->
        (* Two intentional locks never conflict at the class level: the
           conflict, if any, surfaces on the instances themselves.  Two
           hierarchical locks additionally compare their ranges: modes
           that clash on disjoint ranges still commute. *)
        if held.r_hier && req.r_hier then
          (not (commute held.r_mode req.r_mode)) && Pred.overlaps held.r_pred req.r_pred
        else if held.r_hier || req.r_hier then not (commute held.r_mode req.r_mode)
        else false
    | Resource.Field _ | Resource.Fragment _ | Resource.Relation _ | Resource.Meth _ ->
        false
  in
  let on_top_send ctx oid cls m =
    let g = Global_modes.id gm cls m in
    ctx.Scheme.acquire (Scheme.req ~txn:ctx.Scheme.txn (Resource.Class cls) g);
    ctx.Scheme.acquire (Scheme.req ~txn:ctx.Scheme.txn (Resource.Instance oid) g)
  in
  let lock_classes ctx ~hier ?pred classes m =
    List.iter
      (fun d ->
        (* A class of the scope that does not understand the method has no
           instances the operation could touch. *)
        if Schema.resolve schema d m <> None then
          let g = Global_modes.id gm d m in
          ctx.Scheme.acquire (Scheme.req ~txn:ctx.Scheme.txn ~hier ?pred (Resource.Class d) g))
      classes
  in
  {
    Scheme.name = "tav";
    descr = "compiled access modes from transitive access vectors (the paper)";
    conflict;
    on_begin = Scheme.no_begin;
    on_top_send;
    on_self_send = (fun _ _ _ _ -> ());
    on_read = (fun _ _ _ _ -> ());
    on_write = (fun _ _ _ _ -> ());
    on_extent =
      (fun ctx cls ~deep ~pred m ->
        let classes = if deep then Schema.domain schema cls else [ cls ] in
        lock_classes ctx ~hier:true ?pred classes m);
    on_some_of_domain =
      (fun ctx cls m -> lock_classes ctx ~hier:false (Schema.domain schema cls) m);
    locks_instances_on_extent = false;
    mvcc = None;
  }
