open Tavcc_model
open Tavcc_core
open Tavcc_lock

type ctx = { txn : Tavcc_txn.Txn.t; acquire : Lock_table.req -> unit }

(* --- multi-version hooks (the mvcc-tav scheme) ---

   The engines stay scheme-agnostic: when a scheme carries an [mvcc]
   record they open a session per transaction attempt, route field
   accesses through it (via the interpreter's value overrides) and drive
   the two-step commit; with [mvcc = None] nothing changes. *)

type txn_mode = Mv_pessimistic | Mv_snapshot | Mv_optimistic

let mode_label = function
  | Mv_pessimistic -> "pessimistic"
  | Mv_snapshot -> "snapshot"
  | Mv_optimistic -> "optimistic"

exception Validation_failed

type mvcc_session = {
  ms_mode : txn_mode;
  ms_snapshot : int;
  ms_read : Oid.t -> Name.Field.t -> Value.t;
  ms_write : Oid.t -> Name.Field.t -> before:Value.t -> Value.t -> bool;
  ms_precommit : ctx -> write:(Oid.t -> Name.Field.t -> Value.t -> unit) -> unit;
  ms_publish : unit -> int option;
  ms_abort : unit -> unit;
  ms_reads : unit -> (Oid.t * Name.Field.t * int) list;
}

type mvcc = {
  mv_begin :
    ctx ->
    read:(Oid.t -> Name.Field.t -> Value.t) ->
    class_of:(Oid.t -> Name.Class.t) ->
    Action.t list ->
    mvcc_session;
  mv_run_begin : unit -> unit;
  mv_dump : unit -> (Oid.t * Name.Field.t * (int * Value.t) list) list;
}

type t = {
  name : string;
  descr : string;
  conflict : Lock_table.req -> Lock_table.req -> bool;
  on_begin : ctx -> class_of:(Oid.t -> Name.Class.t) -> Action.t list -> unit;
  on_top_send : ctx -> Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  on_self_send : ctx -> Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  on_read : ctx -> Oid.t -> Name.Class.t -> Name.Field.t -> unit;
  on_write : ctx -> Oid.t -> Name.Class.t -> Name.Field.t -> unit;
  on_extent :
    ctx -> Name.Class.t -> deep:bool -> pred:Tavcc_lock.Pred.t option -> Name.Method.t -> unit;
  on_some_of_domain : ctx -> Name.Class.t -> Name.Method.t -> unit;
  locks_instances_on_extent : bool;
  mvcc : mvcc option;
}

let no_begin _ctx ~class_of:_ _actions = ()

let req ~txn ?(hier = false) ?pred res mode =
  { Lock_table.r_txn = txn.Tavcc_txn.Txn.id; r_res = res; r_mode = mode; r_hier = hier;
    r_pred = pred }

let mode_name _t (r : Lock_table.req) = Printf.sprintf "mode%d" r.Lock_table.r_mode

let has_write av = Access_vector.write_fields av <> []
let writes_directly an cls m = has_write (Analysis.dav an cls m)
let writes_transitively an cls m = has_write (Analysis.tav an cls m)
