open Tavcc_model
open Tavcc_core
open Tavcc_lock
module CN = Name.Class

let scheme an =
  let gm = Global_modes.build an in
  let schema = Analysis.schema an in
  let dep = Depgraph.build (Analysis.extraction an) in
  let commute = Global_modes.commute gm in
  (* Same conflict relation as the paper's scheme. *)
  let conflict (held : Lock_table.req) (req : Lock_table.req) =
    match held.Lock_table.r_res with
    | Resource.Instance _ -> not (commute held.r_mode req.r_mode)
    | Resource.Class _ ->
        if held.r_hier || req.r_hier then not (commute held.r_mode req.r_mode) else false
    | _ -> false
  in
  (* Hierarchical coverage of everything a call may reach through
     composition, beyond the entry itself. *)
  let coverage cls m =
    let entry = (cls, m) in
    (* Everything reachable through at least one composition edge — the
       entry itself reappears only when a cycle can lead to other
       instances of its own class. *)
    let sites =
      List.fold_left
        (fun acc (e, m') -> Site.Set.union acc (Depgraph.reachable dep e m'))
        Site.Set.empty (Depgraph.successors dep entry)
    in
    let dynamic =
      Site.Set.exists
        (fun (c, m') -> Extraction.has_dynamic_sends (Analysis.extraction an) c m')
        (Depgraph.reachable dep cls m)
    in
    if dynamic then
      (* Unknown receivers: preclaim the whole schema, hierarchically. *)
      List.concat_map
        (fun c -> List.map (fun m' -> (c, m')) (Schema.methods schema c))
        (Schema.classes schema)
    else Site.Set.elements sites
  in
  let reqs_of_action ~txn ~class_of action =
    match action with
    | Action.Call (oid, m, _) ->
        let cls = class_of oid in
        let g = Global_modes.id gm cls m in
        Scheme.req ~txn (Resource.Class cls) g
        :: Scheme.req ~txn (Resource.Instance oid) g
        :: List.map
             (fun (e, m') ->
               Scheme.req ~txn ~hier:true (Resource.Class e) (Global_modes.id gm e m'))
             (coverage cls m)
    | Action.Call_some { root; targets; meth; _ } ->
        List.filter_map
          (fun d ->
            if Schema.resolve schema d meth <> None then
              Some (Scheme.req ~txn (Resource.Class d) (Global_modes.id gm d meth))
            else None)
          (Schema.domain schema root)
        @ List.map
            (fun oid ->
              Scheme.req ~txn (Resource.Instance oid)
                (Global_modes.id gm (class_of oid) meth))
            targets
        @ List.concat_map
            (fun oid ->
              List.map
                (fun (e, m') ->
                  Scheme.req ~txn ~hier:true (Resource.Class e) (Global_modes.id gm e m'))
                (coverage (class_of oid) meth))
            targets
    | Action.Call_extent { cls; deep; meth; _ }
    | Action.Call_range { cls; deep; meth; _ } ->
        (* Ranges are preclaimed as whole extents: the conservative scheme
           trades precision for its deadlock-freedom guarantee. *)
        let classes = if deep then Schema.domain schema cls else [ cls ] in
        let classes = List.filter (fun d -> Schema.resolve schema d meth <> None) classes in
        List.concat_map
          (fun d ->
            Scheme.req ~txn ~hier:true (Resource.Class d) (Global_modes.id gm d meth)
            :: List.map
                 (fun (e, m') ->
                   Scheme.req ~txn ~hier:true (Resource.Class e) (Global_modes.id gm e m'))
                 (coverage d meth))
          classes
  in
  let on_begin ctx ~class_of actions =
    let txn = ctx.Scheme.txn in
    let reqs = List.concat_map (reqs_of_action ~txn ~class_of) actions in
    (* Canonical order: deadlock-freedom by ordered acquisition. *)
    let cmp (a : Lock_table.req) (b : Lock_table.req) =
      match Resource.compare a.Lock_table.r_res b.Lock_table.r_res with
      | 0 -> compare (a.r_mode, a.r_hier) (b.r_mode, b.r_hier)
      | n -> n
    in
    List.sort_uniq cmp reqs |> List.iter ctx.Scheme.acquire
  in
  {
    Scheme.name = "tav-pre";
    descr = "conservative 2PL: preclaimed compiled modes via the dependency graph";
    conflict;
    on_begin;
    on_top_send = (fun _ _ _ _ -> ());
    on_self_send = (fun _ _ _ _ -> ());
    on_read = (fun _ _ _ _ -> ());
    on_write = (fun _ _ _ _ -> ());
    on_extent = (fun _ _ ~deep:_ ~pred:_ _ -> ());
    on_some_of_domain = (fun _ _ _ -> ());
    locks_instances_on_extent = false;
    mvcc = None;
  }
