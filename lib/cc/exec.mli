(** Executing transaction actions under a concurrency-control scheme.

    An action is one of the access shapes of sec. 5.2: a message to one
    instance, to some instances of a domain, or to a whole extent (class
    or domain).  {!perform} runs the action through the ODML interpreter
    with hooks that (in order) let the scheme lock, log undo images, record
    the raw read/write trace, and optionally yield to a cooperative
    scheduler between accesses.

    When the scheme covers extents with hierarchical class locks
    ([locks_instances_on_extent = false]), the {e root} send to each
    extent instance is exempted from instance locking; nested cross-object
    sends — which may leave the locked domain — are still controlled. *)

open Tavcc_model
open Tavcc_lang

type action = Action.t =
  | Call of Oid.t * Name.Method.t * Value.t list
  | Call_some of {
      root : Name.Class.t;  (** domain whose classes take intention locks *)
      targets : Oid.t list;
      meth : Name.Method.t;
      args : Value.t list;
    }
  | Call_extent of {
      cls : Name.Class.t;
      deep : bool;  (** false: proper extent; true: the whole domain *)
      meth : Name.Method.t;
      args : Value.t list;
    }
  | Call_range of {
      cls : Name.Class.t;
      deep : bool;
      pred : Tavcc_lock.Pred.t;  (** only matching instances receive the message *)
      meth : Name.Method.t;
      args : Value.t list;
    }

val pp_action : Format.formatter -> action -> unit

(** Passive observation points for sanitizers: every send, every method
    frame (enter/exit, with the class resolution started from and the
    defining site), and every field access.  Probes fire {e after} the
    scheme's own hook at the same point, so whatever locks the scheme
    takes there are already held when the probe runs — which is what lets
    a lock monitor ask "does some held lock dominate this access?".
    The [versioned] flag on [p_read]/[p_write] is true when the access
    runs under a non-pessimistic multi-version session (snapshot or
    optimistic): such reads are lock-free by design and such writes defer
    their locks to precommit, so a lock monitor must exempt both.
    Probes must not raise and must not call back into the executor. *)
type probe = {
  p_top_send : Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  p_self_send : Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  p_enter :
    Oid.t -> Name.Class.t -> resolve_at:Name.Class.t -> defining:Name.Class.t ->
    Name.Method.t -> unit;
  p_exit : Oid.t -> Name.Class.t -> Name.Method.t -> unit;
  p_read : Oid.t -> Name.Class.t -> Name.Field.t -> versioned:bool -> unit;
  p_write : Oid.t -> Name.Class.t -> Name.Field.t -> versioned:bool -> unit;
}

val null_probe : probe

val begin_txn : scheme:Scheme.t -> store:Ast.body Store.t -> ctx:Scheme.ctx -> action list -> unit
(** Invokes the scheme's begin hook with the transaction's whole action
    list — preclaiming schemes acquire everything here, in canonical
    order. *)

val perform :
  scheme:Scheme.t ->
  store:Ast.body Store.t ->
  ctx:Scheme.ctx ->
  ?mv:Scheme.mvcc_session ->
  ?probe:probe ->
  ?on_read:(Oid.t -> Name.Field.t -> unit) ->
  ?on_write:(Oid.t -> Name.Field.t -> unit) ->
  ?on_update:(Oid.t -> Name.Field.t -> before:Value.t -> after:Value.t -> unit) ->
  ?yield:(unit -> unit) ->
  ?max_steps:int ->
  action ->
  unit
(** Undo images are logged into [ctx.txn] before each write takes effect.

    [mv], when given, routes field accesses through a multi-version
    session: snapshot/optimistic sessions read via [ms_read] and have
    writes offered to [ms_write] (absorbed writes skip the undo log, the
    trace callbacks and the store mutation); pessimistic sessions keep the
    in-place read path but still see writes via [ms_write] so the session
    can publish versions at commit.  Versioned sessions refuse [new]
    ([Invalid_argument]) — classification must exclude creating methods.

    [on_write] sees only the touched slot (the serializability oracle
    needs nothing more); [on_update] additionally carries the before- and
    after-images, exactly what a write-ahead logger must persist.  Both
    run after the scheme's lock is held and before the store mutates.

    @raise Interp.Runtime_error on dynamic failures of the method code *)
