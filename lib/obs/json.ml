type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | String s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some cp -> (
                  match Uchar.of_int cp with
                  | u -> Buffer.add_utf_8_uchar buf u
                  | exception Invalid_argument _ -> fail "bad code point"));
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None

let to_str = function String s -> Some s | _ -> None
