(** Chrome trace-event model: the JSON array format Perfetto and
    [chrome://tracing] load directly.

    Every event carries the four mandatory fields of the format — [ph]
    (phase), [ts] (timestamp, conventionally microseconds; the simulator
    uses scheduler steps), [pid] and [tid] — plus a name, a category and
    optional typed [args].  Four phases are enough for the simulator's
    fiber schedules:
    - [Complete] ("X"): a span with an explicit duration — one per
      transaction attempt;
    - [Begin]/[End] ("B"/"E"): nested open/close spans — lock waits;
    - [Instant] ("i"): a point event — deadlocks, wounds, deaths,
      timeouts. *)

type phase = Complete | Begin | End | Instant | Meta

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : int;
  dur : int;  (** meaningful for [Complete] only *)
  pid : int;
  tid : int;
  args : (string * Json.t) list;
}

val ph_string : phase -> string

val complete :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> dur:int -> tid:int -> string -> event

val begin_ :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> tid:int -> string -> event

val end_ :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> tid:int -> string -> event

val instant :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> tid:int -> string -> event

val process_name : pid:int -> string -> event
(** The ["M"] metadata event that labels a pid in the viewer — one per
    process when merging several runs into one trace. *)

val event_to_json : event -> Json.t
(** Always includes ["name"], ["cat"], ["ph"], ["ts"], ["pid"] and
    ["tid"]; ["dur"] for complete events, ["s"] = "t" (thread scope) for
    instants, ["args"] when non-empty. *)

val to_json : event list -> Json.t
(** The array-of-events form of the trace-event format. *)

val to_string : event list -> string
