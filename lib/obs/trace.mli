(** Chrome trace-event model: the JSON array format Perfetto and
    [chrome://tracing] load directly.

    Every event carries the four mandatory fields of the format — [ph]
    (phase), [ts] (timestamp, conventionally microseconds; the simulator
    uses scheduler steps), [pid] and [tid] — plus a name, a category and
    optional typed [args].  The phases in use:
    - [Complete] ("X"): a span with an explicit duration — one per
      transaction attempt;
    - [Begin]/[End] ("B"/"E"): nested open/close spans — lock waits;
    - [Instant] ("i"): a point event — deadlocks, wounds, deaths,
      timeouts;
    - [Flow_start]/[Flow_end] ("s"/"f"): an arrow between two slices,
      possibly on different tracks — the multicore exporter links a
      blocked request on one domain to its grant or wound on another;
      the two records pair by [id] within the same [cat] and [name]. *)

type phase = Complete | Begin | End | Instant | Meta | Flow_start | Flow_end

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : int;
  dur : int;  (** meaningful for [Complete] only *)
  pid : int;
  tid : int;
  id : int;  (** flow-pairing id; meaningful for the flow phases only *)
  args : (string * Json.t) list;
}

val ph_string : phase -> string

val complete :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> dur:int -> tid:int -> string -> event

val begin_ :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> tid:int -> string -> event

val end_ :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> tid:int -> string -> event

val instant :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> tid:int -> string -> event

val flow_start :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> tid:int -> id:int -> string -> event

val flow_end :
  ?cat:string -> ?pid:int -> ?args:(string * Json.t) list ->
  ts:int -> tid:int -> id:int -> string -> event
(** Rendered with binding point ["e"]: the arrow lands on the slice
    enclosing [ts] on the destination track. *)

val process_name : pid:int -> string -> event
(** The ["M"] metadata event that labels a pid in the viewer — one per
    process when merging several runs into one trace. *)

val thread_name : pid:int -> tid:int -> string -> event
(** The ["M"] metadata event that labels a tid (a track) in the viewer —
    the multicore exporter emits one per domain. *)

val event_to_json : event -> Json.t
(** Always includes ["name"], ["cat"], ["ph"], ["ts"], ["pid"] and
    ["tid"]; ["dur"] for complete events, ["s"] = "t" (thread scope) for
    instants, ["id"] (plus ["bp"] = "e" on "f") for flow events, and
    ["args"] when non-empty. *)

val to_json : event list -> Json.t
(** The array-of-events form of the trace-event format. *)

val to_string : event list -> string
