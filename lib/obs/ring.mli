(** Single-producer single-consumer event rings.

    One ring per writer domain: the owning domain {!push}es without ever
    taking a lock (a slot write plus one atomic store), and a single
    coordinator domain {!drain}s all rings periodically.  This is how the
    multicore engine streams trace events off its workers without a
    global mutex — contrast {!Sink.ring}, which is single-domain and
    keeps only the newest window.

    Correctness under the OCaml 5 memory model is the classical
    message-passing idiom: the producer's plain slot write is published
    by its atomic store to [tail], and the consumer's acquire read of
    [tail] makes the slot visible before it is read.  Slots hold
    immutable values, so a drained event is never torn.  When the ring is
    full the push is {e dropped} (never blocks, never overwrites unread
    events) and counted, so a consumer can always reconcile
    [pushed = drained + dropped + pending].

    The SPSC discipline is the caller's contract: one domain pushing, one
    domain draining.  Any number of domains may read the counters. *)

type 'a t

val create : int -> 'a t
(** [create cap] — capacity is rounded up to a power of two, minimum 2.
    @raise Invalid_argument when [cap <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** Producer side only.  [false] means the ring was full and the event
    was dropped (and counted in {!dropped}). *)

val drain : 'a t -> ('a -> unit) -> int
(** Consumer side only.  Applies the callback to every event published
    so far, oldest first, frees the slots, and returns how many were
    consumed. *)

val pushed : 'a t -> int
(** Events accepted by {!push} since creation (excludes drops). *)

val dropped : 'a t -> int
(** Pushes refused because the ring was full. *)

val drained : 'a t -> int
(** Events consumed by {!drain} since creation. *)

val length : 'a t -> int
(** Events currently published but not yet drained (a racy snapshot —
    exact only when producer or consumer is quiescent). *)
