type phase = Complete | Begin | End | Instant | Meta | Flow_start | Flow_end

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : int;
  dur : int;
  pid : int;
  tid : int;
  id : int;
  args : (string * Json.t) list;
}

let ph_string = function
  | Complete -> "X"
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Meta -> "M"
  | Flow_start -> "s"
  | Flow_end -> "f"

let make ?(cat = "") ?(pid = 0) ?(args = []) ~ph ~ts ~tid name =
  { name; cat; ph; ts; dur = 0; pid; tid; id = 0; args }

let complete ?cat ?pid ?args ~ts ~dur ~tid name =
  { (make ?cat ?pid ?args ~ph:Complete ~ts ~tid name) with dur }

let begin_ ?cat ?pid ?args ~ts ~tid name = make ?cat ?pid ?args ~ph:Begin ~ts ~tid name
let end_ ?cat ?pid ?args ~ts ~tid name = make ?cat ?pid ?args ~ph:End ~ts ~tid name
let instant ?cat ?pid ?args ~ts ~tid name = make ?cat ?pid ?args ~ph:Instant ~ts ~tid name

(* A flow is an arrow between two slices: an "s" record anchored at the
   source slice and an "f" record (binding point "e": the enclosing
   slice) at the destination, paired by [id] within the same cat+name. *)
let flow_start ?cat ?pid ?args ~ts ~tid ~id name =
  { (make ?cat ?pid ?args ~ph:Flow_start ~ts ~tid name) with id }

let flow_end ?cat ?pid ?args ~ts ~tid ~id name =
  { (make ?cat ?pid ?args ~ph:Flow_end ~ts ~tid name) with id }

let process_name ~pid name =
  make ~pid ~args:[ ("name", Json.String name) ] ~ph:Meta ~ts:0 ~tid:0 "process_name"

let thread_name ~pid ~tid name =
  make ~pid ~args:[ ("name", Json.String name) ] ~ph:Meta ~ts:0 ~tid "thread_name"

let event_to_json e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String (if e.cat = "" then "default" else e.cat));
      ("ph", Json.String (ph_string e.ph));
      ("ts", Json.Int e.ts);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid);
    ]
  in
  let dur = if e.ph = Complete then [ ("dur", Json.Int e.dur) ] else [] in
  (* Thread-scoped instants render as small arrows in Perfetto. *)
  let scope = if e.ph = Instant then [ ("s", Json.String "t") ] else [] in
  let flow =
    match e.ph with
    | Flow_start -> [ ("id", Json.Int e.id) ]
    | Flow_end -> [ ("id", Json.Int e.id); ("bp", Json.String "e") ]
    | _ -> []
  in
  let args = if e.args = [] then [] else [ ("args", Json.Obj e.args) ] in
  Json.Obj (base @ dur @ scope @ flow @ args)

let to_json events = Json.List (List.map event_to_json events)

let to_string events = Json.to_string (to_json events)
