type 'a t =
  | Null
  | Ring of { cap : int; buf : 'a option array; mutable next : int; mutable pushed : int }
  | Callback of { cb : 'a -> unit; mutable sent : int }

let null = Null

let ring cap =
  if cap <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  Ring { cap; buf = Array.make cap None; next = 0; pushed = 0 }

let callback cb = Callback { cb; sent = 0 }

let push t x =
  match t with
  | Null -> ()
  | Ring r ->
      r.buf.(r.next) <- Some x;
      r.next <- (r.next + 1) mod r.cap;
      r.pushed <- r.pushed + 1
  | Callback c ->
      c.sent <- c.sent + 1;
      c.cb x

let contents t =
  match t with
  | Null | Callback _ -> []
  | Ring r ->
      let len = min r.pushed r.cap in
      let start = (r.next - len + r.cap) mod r.cap in
      List.init len (fun i ->
          match r.buf.((start + i) mod r.cap) with
          | Some x -> x
          | None -> assert false)

let pushed = function Null -> 0 | Ring r -> r.pushed | Callback c -> c.sent

let dropped = function
  | Null | Callback _ -> 0
  | Ring r -> max 0 (r.pushed - r.cap)

let is_null = function Null -> true | _ -> false
