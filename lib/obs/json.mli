(** A minimal JSON tree: emitter and strict parser.

    The observability layer exports metrics registries and Chrome
    trace-event files as JSON; nothing heavier than this module is needed
    (and the container deliberately carries no JSON library).  The parser
    exists so tests and the CI smoke job can assert that everything we
    emit round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace), valid JSON — strings
    are escaped, control characters become [\uXXXX]. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse of a complete document; trailing garbage is an error.
    Integers stay [Int]; anything with a fraction or exponent becomes
    [Float]. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_str : t -> string option
