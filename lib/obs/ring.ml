(* SPSC ring: [head] is owned by the consumer, [tail] by the producer;
   each side only ever stores to its own index.  A slot between head and
   tail is published (producer wrote it, then released it through the
   atomic store to [tail]); a slot outside that window belongs to the
   producer.  The option array holds immutable values, so a drained
   event is a single pointer read — nothing can tear. *)

type 'a t = {
  mask : int;
  buf : 'a option array;
  head : int Atomic.t; (* next slot to read; consumer-owned *)
  tail : int Atomic.t; (* next slot to write; producer-owned *)
  r_pushed : int Atomic.t;
  r_dropped : int Atomic.t;
  r_drained : int Atomic.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 2

let create cap =
  if cap <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let size = next_pow2 cap in
  {
    mask = size - 1;
    buf = Array.make size None;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    r_pushed = Atomic.make 0;
    r_dropped = Atomic.make 0;
    r_drained = Atomic.make 0;
  }

let capacity t = t.mask + 1

let push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then begin
    ignore (Atomic.fetch_and_add t.r_dropped 1);
    false
  end
  else begin
    t.buf.(tail land t.mask) <- Some x;
    (* Release: publishes the slot write above to the consumer. *)
    Atomic.set t.tail (tail + 1);
    ignore (Atomic.fetch_and_add t.r_pushed 1);
    true
  end

let drain t f =
  let tail = Atomic.get t.tail (* acquire: slots below [tail] are visible *) in
  let head = Atomic.get t.head in
  let n = tail - head in
  for i = head to tail - 1 do
    let slot = i land t.mask in
    (match t.buf.(slot) with Some x -> f x | None -> assert false);
    t.buf.(slot) <- None
  done;
  (* Release: returns the slots to the producer only after they are
     read and cleared. *)
  Atomic.set t.head tail;
  ignore (Atomic.fetch_and_add t.r_drained n);
  n

let pushed t = Atomic.get t.r_pushed
let dropped t = Atomic.get t.r_dropped
let drained t = Atomic.get t.r_drained
let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
