(** Lock-contention profiler: attributes waiting to resources.

    Fed from drained trace events (one coordinator thread), it
    accumulates per-resource totals — how often requests blocked on the
    resource, how long they waited, how deep its queue ran, and how many
    deadlocks or kills it participated in — and reports the top-k hot
    spots by cumulative wait time.

    The profiler is generic in the resource key ['k] (the parallel
    engine keys it by [Tavcc_lock.Resource.t], i.e. the (instance,
    field-slice) granule); keys are compared structurally.  All entry
    points are mutex-protected so a live introspection loop ([oosim
    top]) can snapshot {!top} while the coordinator is still feeding —
    the cost is irrelevant at drain cadence. *)

type 'k entry = {
  e_res : 'k;
  e_blocks : int;  (** requests that had to queue on the resource *)
  e_waits : int;  (** completed waits (matched block→grant pairs) *)
  e_wait_us : int;  (** cumulative wait attributed, microseconds *)
  e_max_wait_us : int;
  e_queue_depth_sum : int;  (** sum of queue depths seen at block time *)
  e_max_queue_depth : int;
  e_deadlocks : int;  (** deadlock cycles broken while a victim waited here *)
  e_kills : int;  (** victims killed (any reason) while waiting here *)
}

val mean_wait_us : 'k entry -> float
val mean_queue_depth : 'k entry -> float

type 'k t

val create : unit -> 'k t

val record_block : 'k t -> 'k -> queue_depth:int -> unit
(** A request queued on the resource behind [queue_depth] others. *)

val record_wait : 'k t -> 'k -> wait_us:int -> unit
(** A wait on the resource completed (granted, or cut short by a kill)
    after [wait_us] microseconds. *)

val record_kill : 'k t -> ?deadlock:bool -> 'k -> unit
(** A transaction waiting on the resource was killed; [deadlock] marks
    the kill as a deadlock-cycle resolution (default false). *)

val blocks : 'k t -> int
val total_wait_us : 'k t -> int

val top : ?k:int -> 'k t -> 'k entry list
(** The [k] (default 10) hottest resources by cumulative wait time, ties
    broken by deadlock participation then block count; fewer when fewer
    resources ever blocked. *)

val to_json : key:('k -> string) -> ?k:int -> 'k t -> Json.t

val pp : key:('k -> string) -> ?k:int -> Format.formatter -> 'k t -> unit
(** A ranked table: share of total wait, cumulative/mean/max wait, queue
    depths and deadlock participation per resource. *)
