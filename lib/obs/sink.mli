(** A pluggable event sink: where a producer's stream of events goes.

    Three behaviours cover every consumer the engine has:
    - {!null} discards everything — the production default, a single
      branch per event;
    - {!ring} keeps the most recent [n] events in a preallocated circular
      buffer (read back with {!contents});
    - {!callback} hands each event to the caller as it happens (streaming
      exporters, live dashboards, tests). *)

type 'a t

val null : 'a t

val ring : int -> 'a t
(** @raise Invalid_argument on a non-positive capacity. *)

val callback : ('a -> unit) -> 'a t

val push : 'a t -> 'a -> unit

val contents : 'a t -> 'a list
(** Ring contents, oldest surviving event first; [[]] for null and
    callback sinks. *)

val pushed : 'a t -> int
(** Events pushed so far (0 for {!null}, which does not count). *)

val dropped : 'a t -> int
(** Events a ring has overwritten; 0 for the other sinks. *)

val is_null : 'a t -> bool
