type 'k entry = {
  e_res : 'k;
  e_blocks : int;
  e_waits : int;
  e_wait_us : int;
  e_max_wait_us : int;
  e_queue_depth_sum : int;
  e_max_queue_depth : int;
  e_deadlocks : int;
  e_kills : int;
}

let mean_wait_us e =
  if e.e_waits = 0 then 0.0 else float_of_int e.e_wait_us /. float_of_int e.e_waits

let mean_queue_depth e =
  if e.e_blocks = 0 then 0.0
  else float_of_int e.e_queue_depth_sum /. float_of_int e.e_blocks

(* Mutable cells per resource; the mutex serialises the coordinator's
   feed against snapshot readers (oosim top), never a hot path. *)
type 'k cell = {
  mutable c_blocks : int;
  mutable c_waits : int;
  mutable c_wait_us : int;
  mutable c_max_wait_us : int;
  mutable c_queue_depth_sum : int;
  mutable c_max_queue_depth : int;
  mutable c_deadlocks : int;
  mutable c_kills : int;
}

type 'k t = {
  mu : Mutex.t;
  tbl : ('k, 'k cell) Hashtbl.t;
  mutable t_blocks : int;
  mutable t_wait_us : int;
}

let create () =
  { mu = Mutex.create (); tbl = Hashtbl.create 64; t_blocks = 0; t_wait_us = 0 }

let with_mu t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let cell t res =
  match Hashtbl.find_opt t.tbl res with
  | Some c -> c
  | None ->
      let c =
        {
          c_blocks = 0;
          c_waits = 0;
          c_wait_us = 0;
          c_max_wait_us = 0;
          c_queue_depth_sum = 0;
          c_max_queue_depth = 0;
          c_deadlocks = 0;
          c_kills = 0;
        }
      in
      Hashtbl.replace t.tbl res c;
      c

let record_block t res ~queue_depth =
  with_mu t (fun () ->
      let c = cell t res in
      c.c_blocks <- c.c_blocks + 1;
      c.c_queue_depth_sum <- c.c_queue_depth_sum + queue_depth;
      if queue_depth > c.c_max_queue_depth then c.c_max_queue_depth <- queue_depth;
      t.t_blocks <- t.t_blocks + 1)

let record_wait t res ~wait_us =
  let wait_us = max 0 wait_us in
  with_mu t (fun () ->
      let c = cell t res in
      c.c_waits <- c.c_waits + 1;
      c.c_wait_us <- c.c_wait_us + wait_us;
      if wait_us > c.c_max_wait_us then c.c_max_wait_us <- wait_us;
      t.t_wait_us <- t.t_wait_us + wait_us)

let record_kill t ?(deadlock = false) res =
  with_mu t (fun () ->
      let c = cell t res in
      c.c_kills <- c.c_kills + 1;
      if deadlock then c.c_deadlocks <- c.c_deadlocks + 1)

let blocks t = with_mu t (fun () -> t.t_blocks)
let total_wait_us t = with_mu t (fun () -> t.t_wait_us)

let entry_of res (c : 'k cell) =
  {
    e_res = res;
    e_blocks = c.c_blocks;
    e_waits = c.c_waits;
    e_wait_us = c.c_wait_us;
    e_max_wait_us = c.c_max_wait_us;
    e_queue_depth_sum = c.c_queue_depth_sum;
    e_max_queue_depth = c.c_max_queue_depth;
    e_deadlocks = c.c_deadlocks;
    e_kills = c.c_kills;
  }

let top ?(k = 10) t =
  let all =
    with_mu t (fun () -> Hashtbl.fold (fun res c acc -> entry_of res c :: acc) t.tbl [])
  in
  let ranked =
    List.sort
      (fun a b ->
        match Int.compare b.e_wait_us a.e_wait_us with
        | 0 -> (
            match Int.compare b.e_deadlocks a.e_deadlocks with
            | 0 -> Int.compare b.e_blocks a.e_blocks
            | c -> c)
        | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) ranked

let share total us = if total <= 0 then 0.0 else 100.0 *. float_of_int us /. float_of_int total

let to_json ~key ?k t =
  let total = total_wait_us t in
  Json.Obj
    [
      ("blocks", Json.Int (blocks t));
      ("total_wait_us", Json.Int total);
      ( "top",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("resource", Json.String (key e.e_res));
                   ("blocks", Json.Int e.e_blocks);
                   ("waits", Json.Int e.e_waits);
                   ("wait_us", Json.Int e.e_wait_us);
                   ("wait_share_pct", Json.Float (share total e.e_wait_us));
                   ("mean_wait_us", Json.Float (mean_wait_us e));
                   ("max_wait_us", Json.Int e.e_max_wait_us);
                   ("mean_queue_depth", Json.Float (mean_queue_depth e));
                   ("max_queue_depth", Json.Int e.e_max_queue_depth);
                   ("deadlocks", Json.Int e.e_deadlocks);
                   ("kills", Json.Int e.e_kills);
                 ])
             (top ?k t)) );
    ]

let pp ~key ?k ppf t =
  let total = total_wait_us t in
  let entries = top ?k t in
  if entries = [] then Format.fprintf ppf "no lock waits recorded@."
  else begin
    Format.fprintf ppf "%-34s %6s %9s %7s %9s %6s %5s %5s@." "resource" "waits"
      "wait-ms" "share%" "mean-us" "max-q" "dlk" "kill";
    List.iter
      (fun e ->
        Format.fprintf ppf "%-34s %6d %9.2f %7.1f %9.0f %6d %5d %5d@." (key e.e_res)
          e.e_waits
          (float_of_int e.e_wait_us /. 1e3)
          (share total e.e_wait_us) (mean_wait_us e) e.e_max_queue_depth e.e_deadlocks
          e.e_kills)
      entries;
    Format.fprintf ppf "%-34s %6d %9.2f@." "(total)" (blocks t)
      (float_of_int total /. 1e3)
  end
