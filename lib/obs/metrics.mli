(** Counters, gauges and log-bucketed histograms in a named registry.

    Instruments hand a registry around ({!create} once, pass it to every
    layer) and hold on to the metric handles they obtain from {!counter},
    {!gauge} and {!histogram} — the name lookup happens at registration,
    never on the hot path.  Recording is a handful of integer stores: no
    allocation, no formatting, nothing is rendered until {!to_json} or
    {!pp} is called.

    Histograms are log-bucketed: bucket 0 holds the observations [<= 0]
    and bucket [i >= 1] the values in [2^(i-1), 2^i - 1], so a histogram
    is 63 ints regardless of range — wait times of 1 step and of a
    million steps fit the same array.

    Every cell is an [Atomic.t], so handles may be shared across domains:
    concurrent increments are never lost (the parallel engine hammers one
    registry from every worker).  Registration itself is mutex-protected;
    snapshots ({!value}, {!to_json}, {!pp}) are per-cell atomic but do not
    freeze the registry as a whole. *)

type t
(** A registry: an ordered set of named metrics. *)

type counter
type gauge
type histogram

val create : unit -> t

val labelled : string -> (string * string) list -> string
(** [labelled "net.requests" ["client", "blast-3"]] is
    ["net.requests{client=\"blast-3\"}"] — a registry name carrying a
    Prometheus label set.  Such names are ordinary registry keys (each
    label combination is its own metric cell); {!to_prometheus} renders
    the label part natively instead of sanitising it away, so per-session
    or per-scheme series group under one metric family.  Label values
    have ['"'], ['\\'] and newlines escaped. *)

val counter : t -> string -> counter
(** Registers (or retrieves) the counter [name].
    @raise Invalid_argument if [name] is registered with another type. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> int -> unit
(** Sets the current value and tracks the high-water mark. *)

val gauge_value : gauge -> int
val gauge_max : gauge -> int

val observe : histogram -> int -> unit

val count : histogram -> int
val sum : histogram -> int
val max_value : histogram -> int
val mean : histogram -> float

val bucket_of : int -> int
(** The bucket index of a value: 0 for [v <= 0], otherwise the number of
    significant bits of [v]. *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] range of a bucket; bucket 0 is [(min_int, 0)]. *)

val nonempty_buckets : histogram -> (int * int * int) list
(** [(lo, hi, count)] for every bucket with at least one observation, in
    increasing order. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([q] clamped to [0, 1]) by
    linear interpolation inside the log bucket holding the target rank;
    the exact tracked max clamps the top bucket, and an empty histogram
    reports [0.].  The estimate's relative error is bounded by the
    bucket width (a factor of 2). *)

val time_us : t -> string -> (unit -> 'a) -> 'a
(** [time_us t name f] runs [f] and records its wall-clock duration in
    microseconds into the histogram [name] (observed even if [f]
    raises). *)

val names : t -> string list
(** Registration order. *)

val to_json : t -> Json.t
(** Histograms carry [count]/[sum]/[max]/[mean], interpolated
    [p50]/[p95]/[p99], and the non-empty buckets. *)

val pp : Format.formatter -> t -> unit

val to_prometheus : ?prefix:string -> t -> string
(** The Prometheus text exposition (format 0.0.4) of the whole registry,
    ready to be written to a file or served verbatim over HTTP.  Names
    are sanitised to [[a-zA-Z0-9_:]] and prefixed with [prefix]
    (default ["tavcc"], "" for none): counter [par.commits] becomes
    [tavcc_par_commits].  Gauges emit their [_max] high-water mark as a
    second gauge; histograms emit the cumulative [le] bucket series,
    [_sum]/[_count], and [_p50]/[_p95]/[_p99] quantile gauges. *)
