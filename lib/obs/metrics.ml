type counter = { mutable c : int }
type gauge = { mutable g : int; mutable g_max : int }

let buckets_len = 63

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_buckets : int array; (* h_buckets.(i) counts observations in bucket i *)
}

type metric = C of counter | G of gauge | H of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let register t name mk unpack kind =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
      match unpack m with
      | Some x -> x
      | None -> invalid_arg (Printf.sprintf "Metrics: %s is already a %s" name kind))
  | None ->
      let x = mk () in
      Hashtbl.replace t.tbl name x;
      t.order <- name :: t.order;
      (match unpack x with Some y -> y | None -> assert false)

let counter t name =
  register t name (fun () -> C { c = 0 }) (function C c -> Some c | _ -> None) "counter"

let gauge t name =
  register t name
    (fun () -> G { g = 0; g_max = 0 })
    (function G g -> Some g | _ -> None)
    "gauge"

let histogram t name =
  register t name
    (fun () -> H { h_count = 0; h_sum = 0; h_max = 0; h_buckets = Array.make buckets_len 0 })
    (function H h -> Some h | _ -> None)
    "histogram"

(* --- counters --- *)

let add c n = c.c <- c.c + n
let incr c = add c 1
let value c = c.c

(* --- gauges --- *)

let set g v =
  g.g <- v;
  if v > g.g_max then g.g_max <- v

let gauge_value g = g.g
let gauge_max g = g.g_max

(* --- histograms --- *)

(* Log-bucketing: bucket 0 holds the observations [<= 0]; bucket [i >= 1]
   holds the values whose binary magnitude is [i], i.e. the interval
   [2^(i-1), 2^i - 1].  The index of [v] is therefore the number of
   significant bits of [v]. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and n = ref v in
    while !n > 0 do
      n := !n lsr 1;
      i := !i + 1
    done;
    min !i (buckets_len - 1)
  end

let bucket_bounds i =
  if i = 0 then (min_int, 0) else ((1 lsl (i - 1)), (1 lsl i) - 1)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v;
  let b = h.h_buckets in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1

let count h = h.h_count
let sum h = h.h_sum
let max_value h = h.h_max
let mean h = if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count

let nonempty_buckets h =
  let acc = ref [] in
  for i = buckets_len - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      let lo, hi = bucket_bounds i in
      acc := (lo, hi, h.h_buckets.(i)) :: !acc
  done;
  !acc

(* --- timing --- *)

let time_us t name f =
  let h = histogram t name in
  let t0 = Unix.gettimeofday () in
  let finally () = observe h (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)) in
  Fun.protect ~finally f

(* --- export --- *)

let names t = List.rev t.order

let metric_to_json = function
  | C c -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int c.c) ]
  | G g ->
      Json.Obj
        [ ("type", Json.String "gauge"); ("value", Json.Int g.g); ("max", Json.Int g.g_max) ]
  | H h ->
      let buckets =
        List.map
          (fun (lo, hi, n) ->
            Json.Obj
              [
                ("lo", Json.Int (if lo = min_int then 0 else lo));
                ("hi", Json.Int hi);
                ("count", Json.Int n);
              ])
          (nonempty_buckets h)
      in
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int h.h_count);
          ("sum", Json.Int h.h_sum);
          ("max", Json.Int h.h_max);
          ("mean", Json.Float (mean h));
          ("buckets", Json.List buckets);
        ]

let to_json t =
  Json.Obj (List.map (fun name -> (name, metric_to_json (Hashtbl.find t.tbl name))) (names t))

let pp ppf t =
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | C c -> Format.fprintf ppf "%-32s %d@." name c.c
      | G g -> Format.fprintf ppf "%-32s %d (max %d)@." name g.g g.g_max
      | H h ->
          Format.fprintf ppf "%-32s count=%d sum=%d max=%d mean=%.1f@." name h.h_count h.h_sum
            h.h_max (mean h);
          List.iter
            (fun (lo, hi, n) ->
              Format.fprintf ppf "%-32s   [%d..%d] %d@." "" (if lo = min_int then 0 else lo) hi n)
            (nonempty_buckets h))
    (names t)
