(* Every cell is an [Atomic.t]: handles are shared freely across domains
   (the parallel engine hammers one registry from every worker), and an
   increment is a single fetch-and-add — no locks, no lost updates.  The
   high-water marks (gauge max, histogram max) use a CAS loop, the
   standard atomic-max idiom.  Reads ([value], [to_json], ...) are
   per-cell atomic: a concurrent snapshot may mix in-flight updates of
   {e different} cells (count vs sum), which is fine for monitoring. *)

type counter = { c : int Atomic.t }
type gauge = { g : int Atomic.t; g_max : int Atomic.t }

let buckets_len = 63

type histogram = {
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
  h_buckets : int Atomic.t array; (* h_buckets.(i) counts observations in bucket i *)
}

type metric = C of counter | G of gauge | H of histogram

type t = {
  mu : Mutex.t; (* guards registration only, never the hot paths *)
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
}

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 32; order = [] }

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let labelled name kvs =
  match kvs with
  | [] -> name
  | _ ->
      Printf.sprintf "%s{%s}" name
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) kvs))

let register t name mk unpack kind =
  Mutex.lock t.mu;
  let x =
    match Hashtbl.find_opt t.tbl name with
    | Some m -> m
    | None ->
        let x = mk () in
        Hashtbl.replace t.tbl name x;
        t.order <- name :: t.order;
        x
  in
  Mutex.unlock t.mu;
  match unpack x with
  | Some y -> y
  | None -> invalid_arg (Printf.sprintf "Metrics: %s is already a %s" name kind)

let counter t name =
  register t name
    (fun () -> C { c = Atomic.make 0 })
    (function C c -> Some c | _ -> None)
    "counter"

let gauge t name =
  register t name
    (fun () -> G { g = Atomic.make 0; g_max = Atomic.make 0 })
    (function G g -> Some g | _ -> None)
    "gauge"

let histogram t name =
  register t name
    (fun () ->
      H
        {
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_max = Atomic.make 0;
          h_buckets = Array.init buckets_len (fun _ -> Atomic.make 0);
        })
    (function H h -> Some h | _ -> None)
    "histogram"

(* --- counters --- *)

let add c n = ignore (Atomic.fetch_and_add c.c n)
let incr c = add c 1
let value c = Atomic.get c.c

(* --- atomic max --- *)

let rec store_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then store_max cell v

(* --- gauges --- *)

let set g v =
  Atomic.set g.g v;
  store_max g.g_max v

let gauge_value g = Atomic.get g.g
let gauge_max g = Atomic.get g.g_max

(* --- histograms --- *)

(* Log-bucketing: bucket 0 holds the observations [<= 0]; bucket [i >= 1]
   holds the values whose binary magnitude is [i], i.e. the interval
   [2^(i-1), 2^i - 1].  The index of [v] is therefore the number of
   significant bits of [v]. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and n = ref v in
    while !n > 0 do
      n := !n lsr 1;
      i := !i + 1
    done;
    min !i (buckets_len - 1)
  end

let bucket_bounds i =
  if i = 0 then (min_int, 0) else ((1 lsl (i - 1)), (1 lsl i) - 1)

let observe h v =
  ignore (Atomic.fetch_and_add h.h_count 1);
  ignore (Atomic.fetch_and_add h.h_sum v);
  store_max h.h_max v;
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1)

let count h = Atomic.get h.h_count
let sum h = Atomic.get h.h_sum
let max_value h = Atomic.get h.h_max
let mean h =
  let n = count h in
  if n = 0 then 0.0 else float_of_int (sum h) /. float_of_int n

(* Quantile estimation by bucket interpolation: walk the cumulative
   counts to the bucket holding the target rank, then interpolate
   linearly inside its [lo, hi] range (bucket 0 is exactly 0).  The
   exact tracked max clamps the top bucket's open-ended guess. *)
let quantile h q =
  let n = count h in
  if n = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let target = q *. float_of_int n in
    let rec go i cum =
      if i >= buckets_len then float_of_int (max_value h)
      else
        let c = Atomic.get h.h_buckets.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then
          if i = 0 then 0.0
          else begin
            let lo, hi = bucket_bounds i in
            let frac = (target -. float_of_int cum) /. float_of_int c in
            let v = float_of_int lo +. (frac *. float_of_int (hi - lo)) in
            Float.min v (float_of_int (max_value h))
          end
        else go (i + 1) cum'
    in
    go 0 0
  end

let nonempty_buckets h =
  let acc = ref [] in
  for i = buckets_len - 1 downto 0 do
    let n = Atomic.get h.h_buckets.(i) in
    if n > 0 then
      let lo, hi = bucket_bounds i in
      acc := (lo, hi, n) :: !acc
  done;
  !acc

(* --- timing --- *)

let time_us t name f =
  let h = histogram t name in
  let t0 = Unix.gettimeofday () in
  let finally () = observe h (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)) in
  Fun.protect ~finally f

(* --- export --- *)

let names t =
  Mutex.lock t.mu;
  let ns = List.rev t.order in
  Mutex.unlock t.mu;
  ns

let find t name =
  Mutex.lock t.mu;
  let m = Hashtbl.find t.tbl name in
  Mutex.unlock t.mu;
  m

let metric_to_json = function
  | C c -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int (value c)) ]
  | G g ->
      Json.Obj
        [
          ("type", Json.String "gauge");
          ("value", Json.Int (gauge_value g));
          ("max", Json.Int (gauge_max g));
        ]
  | H h ->
      let buckets =
        List.map
          (fun (lo, hi, n) ->
            Json.Obj
              [
                ("lo", Json.Int (if lo = min_int then 0 else lo));
                ("hi", Json.Int hi);
                ("count", Json.Int n);
              ])
          (nonempty_buckets h)
      in
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int (count h));
          ("sum", Json.Int (sum h));
          ("max", Json.Int (max_value h));
          ("mean", Json.Float (mean h));
          ("p50", Json.Float (quantile h 0.50));
          ("p95", Json.Float (quantile h 0.95));
          ("p99", Json.Float (quantile h 0.99));
          ("buckets", Json.List buckets);
        ]

let to_json t =
  Json.Obj (List.map (fun name -> (name, metric_to_json (find t name))) (names t))

(* Prometheus text exposition (version 0.0.4).  Metric names keep only
   [a-zA-Z0-9_:]; the registry's dots become underscores.  A name built
   with {!labelled} splits at its '{': the base is sanitised, the label
   part renders natively (suffixes like [_bucket] attach to the base, and
   [le] merges into an existing label set).  Histograms render as the
   classical cumulative [le] series plus p50/p95/p99 gauges (Prometheus
   histograms carry no native quantiles; summaries cannot share a
   histogram's name). *)
let prom_name name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let prom_parts name =
  match String.index_opt name '{' with
  | None -> (prom_name name, None)
  | Some i ->
      let inner = String.sub name (i + 1) (String.length name - i - 2) in
      (prom_name (String.sub name 0 i), if inner = "" then None else Some inner)

let to_prometheus ?(prefix = "tavcc") t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun name ->
      let base, labels = prom_parts name in
      let base = if prefix = "" then base else prefix ^ "_" ^ base in
      (* [series ~suffix ~extra] is "<base><suffix>{labels,extra}". *)
      let series ?(suffix = "") ?extra () =
        let lbls =
          match (labels, extra) with
          | None, None -> ""
          | Some l, None -> "{" ^ l ^ "}"
          | None, Some e -> "{" ^ e ^ "}"
          | Some l, Some e -> "{" ^ l ^ "," ^ e ^ "}"
        in
        base ^ suffix ^ lbls
      in
      match find t name with
      | C c ->
          line "# TYPE %s counter" base;
          line "%s %d" (series ()) (value c)
      | G g ->
          line "# TYPE %s gauge" base;
          line "%s %d" (series ()) (gauge_value g);
          line "# TYPE %s_max gauge" base;
          line "%s %d" (series ~suffix:"_max" ()) (gauge_max g)
      | H h ->
          line "# TYPE %s histogram" base;
          let cum = ref 0 in
          List.iter
            (fun (_, hi, cnt) ->
              cum := !cum + cnt;
              line "%s %d" (series ~suffix:"_bucket" ~extra:(Printf.sprintf "le=\"%d\"" (max hi 0)) ()) !cum)
            (nonempty_buckets h);
          line "%s %d" (series ~suffix:"_bucket" ~extra:"le=\"+Inf\"" ()) (count h);
          line "%s %d" (series ~suffix:"_sum" ()) (sum h);
          line "%s %d" (series ~suffix:"_count" ()) (count h);
          List.iter
            (fun (q, label) ->
              line "# TYPE %s_%s gauge" base label;
              line "%s %g" (series ~suffix:("_" ^ label) ()) (quantile h q))
            [ (0.50, "p50"); (0.95, "p95"); (0.99, "p99") ])
    (names t);
  Buffer.contents b

let pp ppf t =
  List.iter
    (fun name ->
      match find t name with
      | C c -> Format.fprintf ppf "%-32s %d@." name (value c)
      | G g -> Format.fprintf ppf "%-32s %d (max %d)@." name (gauge_value g) (gauge_max g)
      | H h ->
          Format.fprintf ppf "%-32s count=%d sum=%d max=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f@."
            name (count h) (sum h) (max_value h) (mean h) (quantile h 0.50)
            (quantile h 0.95) (quantile h 0.99);
          List.iter
            (fun (lo, hi, n) ->
              Format.fprintf ppf "%-32s   [%d..%d] %d@." "" (if lo = min_int then 0 else lo) hi n)
            (nonempty_buckets h))
    (names t)
