open Tavcc_model
open Tavcc_recovery

(* --- payload encoding ---

   Tokens are concatenated with no separators beyond their own
   terminators: ints are decimal with a trailing ',', strings are
   length-prefixed, floats are the fixed 16 hex digits of their IEEE
   bits.  Record tags: B(egin) U(pdate) C(lr) I(nsert) D(elete)
   T(commit) A(bort) K(checkpoint). *)

let enc_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ','

let enc_str b s =
  enc_int b (String.length s);
  Buffer.add_string b s

let enc_value b = function
  | Value.Vint n ->
      Buffer.add_char b 'i';
      enc_int b n
  | Value.Vbool v -> Buffer.add_string b (if v then "b1" else "b0")
  | Value.Vstring s ->
      Buffer.add_char b 's';
      enc_str b s
  | Value.Vfloat f ->
      Buffer.add_char b 'f';
      Buffer.add_string b (Printf.sprintf "%016Lx" (Int64.bits_of_float f))
  | Value.Vref oid ->
      Buffer.add_char b 'r';
      enc_int b (Oid.to_int oid)
  | Value.Vnull -> Buffer.add_char b 'n'

let payload (r : Wal.record) =
  let b = Buffer.create 32 in
  (match r with
  | Wal.Begin txn ->
      Buffer.add_char b 'B';
      enc_int b txn
  | Wal.Update { txn; oid; field; before; after } ->
      Buffer.add_char b 'U';
      enc_int b txn;
      enc_int b (Oid.to_int oid);
      enc_str b (Name.Field.to_string field);
      enc_value b before;
      enc_value b after
  | Wal.Clr { txn; oid; field; after } ->
      Buffer.add_char b 'C';
      enc_int b txn;
      enc_int b (Oid.to_int oid);
      enc_str b (Name.Field.to_string field);
      enc_value b after
  | Wal.Insert { txn; oid; cls; slots } ->
      Buffer.add_char b 'I';
      enc_int b txn;
      enc_int b (Oid.to_int oid);
      enc_str b (Name.Class.to_string cls);
      enc_int b (List.length slots);
      List.iter
        (fun (f, v) ->
          enc_str b (Name.Field.to_string f);
          enc_value b v)
        slots
  | Wal.Delete { txn; oid; cls; slots } ->
      Buffer.add_char b 'D';
      enc_int b txn;
      enc_int b (Oid.to_int oid);
      enc_str b (Name.Class.to_string cls);
      enc_int b (List.length slots);
      List.iter
        (fun (f, v) ->
          enc_str b (Name.Field.to_string f);
          enc_value b v)
        slots
  | Wal.Commit txn ->
      Buffer.add_char b 'T';
      enc_int b txn
  | Wal.Abort txn ->
      Buffer.add_char b 'A';
      enc_int b txn
  | Wal.Checkpoint active ->
      Buffer.add_char b 'K';
      enc_int b (List.length active);
      List.iter (enc_int b) active);
  Buffer.contents b

let hex_digits = "0123456789abcdef"

let to_hex8 v =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.unsafe_set b i hex_digits.[(v lsr ((7 - i) * 4)) land 15]
  done;
  Bytes.unsafe_to_string b

(* FNV-1a folded to 32 bits: torn/flipped-frame detection, not crypto —
   and an order of magnitude cheaper than a digest on the per-record
   logging path. *)
let checksum payload =
  let h = ref 0x811c9dc5 in
  String.iter (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0xffffffff) payload;
  to_hex8 !h

let encode_record r =
  let p = payload r in
  let b = Buffer.create (String.length p + 16) in
  Buffer.add_string b (to_hex8 (String.length p));
  Buffer.add_string b (checksum p);
  Buffer.add_string b p;
  Buffer.contents b

let encode rs = String.concat "" (List.map encode_record rs)

(* --- decoding --- *)

exception Torn

type cursor = { s : string; mutable pos : int }

let take c n =
  if c.pos + n > String.length c.s then raise Torn;
  let r = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  r

let dec_char c = (take c 1).[0]

let dec_int c =
  let start = c.pos in
  let rec find i =
    if i >= String.length c.s then raise Torn
    else if c.s.[i] = ',' then i
    else find (i + 1)
  in
  let stop = find start in
  c.pos <- stop + 1;
  match int_of_string_opt (String.sub c.s start (stop - start)) with
  | Some n -> n
  | None -> raise Torn

let dec_str c =
  let n = dec_int c in
  if n < 0 then raise Torn;
  take c n

let dec_value c =
  match dec_char c with
  | 'i' -> Value.Vint (dec_int c)
  | 'b' -> (
      match dec_char c with
      | '0' -> Value.Vbool false
      | '1' -> Value.Vbool true
      | _ -> raise Torn)
  | 's' -> Value.Vstring (dec_str c)
  | 'f' -> (
      let hex = take c 16 in
      match Int64.of_string_opt ("0x" ^ hex) with
      | Some bits -> Value.Vfloat (Int64.float_of_bits bits)
      | None -> raise Torn)
  | 'r' -> Value.Vref (Oid.of_int (dec_int c))
  | 'n' -> Value.Vnull
  | _ -> raise Torn

let dec_record p : Wal.record =
  let c = { s = p; pos = 0 } in
  let r =
    match dec_char c with
    | 'B' -> Wal.Begin (dec_int c)
    | 'U' ->
        let txn = dec_int c in
        let oid = Oid.of_int (dec_int c) in
        let field = Name.Field.of_string (dec_str c) in
        let before = dec_value c in
        let after = dec_value c in
        Wal.Update { txn; oid; field; before; after }
    | 'C' ->
        let txn = dec_int c in
        let oid = Oid.of_int (dec_int c) in
        let field = Name.Field.of_string (dec_str c) in
        let after = dec_value c in
        Wal.Clr { txn; oid; field; after }
    | 'I' | 'D' as tag ->
        let txn = dec_int c in
        let oid = Oid.of_int (dec_int c) in
        let cls = Name.Class.of_string (dec_str c) in
        let n = dec_int c in
        if n < 0 then raise Torn;
        let rec slots_of i acc =
          if i = n then List.rev acc
          else
            let f = Name.Field.of_string (dec_str c) in
            let v = dec_value c in
            slots_of (i + 1) ((f, v) :: acc)
        in
        let slots = slots_of 0 [] in
        if tag = 'I' then Wal.Insert { txn; oid; cls; slots }
        else Wal.Delete { txn; oid; cls; slots }
    | 'T' -> Wal.Commit (dec_int c)
    | 'A' -> Wal.Abort (dec_int c)
    | 'K' ->
        let n = dec_int c in
        if n < 0 then raise Torn;
        Wal.Checkpoint (List.init n (fun _ -> dec_int c))
    | _ -> raise Torn
  in
  if c.pos <> String.length p then raise Torn;
  r

let hex_int s = match int_of_string_opt ("0x" ^ s) with Some n -> n | None -> raise Torn

let decode_from s =
  let c = { s; pos = 0 } in
  let acc = ref [] in
  (try
     while c.pos < String.length s do
       let saved = c.pos in
       try
         let len = hex_int (take c 8) in
         let sum = take c 8 in
         let p = take c len in
         if checksum p <> sum then raise Torn;
         acc := dec_record p :: !acc
       with Torn ->
         c.pos <- saved;
         raise Torn
     done
   with Torn -> ());
  (List.rev !acc, c.pos)

let decode s = fst (decode_from s)

let decode_exact s =
  let rs, consumed = decode_from s in
  if consumed <> String.length s then
    invalid_arg "Codec.decode_exact: torn or corrupt tail";
  rs
