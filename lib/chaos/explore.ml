open Tavcc_sim

type case = { c_seed : int; c_plan : Fault.plan }

let pp_case ppf c =
  Format.fprintf ppf "seed=%d plan=%s" c.c_seed (Fault.to_string c.c_plan)

(* --- random case generation --- *)

let random_cases ~base_seed ~runs ~txns =
  List.init runs (fun i ->
      let rng = Rng.create ((base_seed * 2_654_435_761) + i) in
      let c_seed = 1 + Rng.int rng 1_000_000 in
      let sched = Fault.Random_sched (1 + Rng.int rng 1_000_000) in
      let inj = ref [] in
      let some_txn () = Rng.pick rng txns in
      (* A small brew: each fault kind appears with moderate probability
         so most cases combine two or three. *)
      if txns <> [] && Rng.chance rng 0.6 then
        inj :=
          Fault.Delay
            { step = 1 + Rng.int rng 40; txn = some_txn (); ticks = 1 + Rng.int rng 30 }
          :: !inj;
      if txns <> [] && Rng.chance rng 0.5 then
        inj :=
          Fault.Forced_abort { step = 1 + Rng.int rng 40; txn = some_txn () } :: !inj;
      if Rng.chance rng 0.4 then
        inj :=
          Fault.Torn_flush { nth = 1 + Rng.int rng 12; keep = 1 + Rng.int rng 64 }
          :: !inj;
      if Rng.chance rng 0.3 then
        inj := Fault.Crash_at_append (1 + Rng.int rng 60) :: !inj;
      if Rng.chance rng 0.3 then
        inj := Fault.Crash_at_flush (1 + Rng.int rng 20) :: !inj;
      { c_seed; c_plan = { Fault.injections = List.rev !inj; schedule = sched } })

(* --- bounded-preemption systematic enumeration ---

   The base schedule is the all-zero trail (sticky: always the first
   ready transaction).  A preemption flips one step that had [ready > 1]
   to a non-zero successor index.  Cases are emitted by number of
   preemptions: all single-preemption perturbations first, then pairs,
   and so on — the standard bounded-preemption search order. *)

let systematic_cases ~seed ~ready_sizes ~preemptions ~max_cases =
  let sizes = Array.of_list ready_sizes in
  let choice_steps =
    List.filter (fun i -> sizes.(i) > 1) (List.init (Array.length sizes) Fun.id)
  in
  let acc = ref [] and count = ref 0 in
  let emit trail =
    if !count < max_cases then begin
      incr count;
      (* Trim trailing zeroes: past-the-end picks default to 0 anyway. *)
      let rec trim = function 0 :: tl -> trim tl | l -> List.rev l in
      acc :=
        { c_seed = seed; c_plan = { Fault.injections = []; schedule = Fault.Fixed (trim (List.rev trail)) } }
        :: !acc
    end
  in
  let trail_with choices =
    List.init (Array.length sizes) (fun i ->
        match List.assoc_opt i choices with Some v -> v | None -> 0)
  in
  (* Breadth-first over the number of preemptions. *)
  let rec level k chosen_from partial =
    if k = 0 then emit (trail_with partial)
    else
      List.iter
        (fun i ->
          for v = 1 to sizes.(i) - 1 do
            if !count < max_cases then
              level (k - 1)
                (List.filter (fun j -> j > i) chosen_from)
                ((i, v) :: partial)
          done)
        chosen_from
  in
  let rec levels k =
    if k <= preemptions && !count < max_cases then begin
      level k choice_steps [];
      levels (k + 1)
    end
  in
  levels 1;
  List.rev !acc

let find_failure ~run cases =
  List.find_map
    (fun c ->
      let r = run c in
      if Torture.ok r then None else Some (c, r))
    cases

(* --- shrinking --- *)

let shrink ~run case =
  let fails c = not (run c) in
  let with_inj c inj = { c with c_plan = { c.c_plan with Fault.injections = inj } } in
  let with_sched c s = { c with c_plan = { c.c_plan with Fault.schedule = s } } in
  (* Drop injections one at a time, keeping drops that still fail. *)
  let drop_injections c =
    List.fold_left
      (fun c i ->
        let inj = c.c_plan.Fault.injections in
        if i >= List.length inj then c
        else
          let cand = with_inj c (List.filteri (fun j _ -> j <> i) inj) in
          if fails cand then cand else c)
      c
      (List.init (List.length case.c_plan.Fault.injections) Fun.id)
  in
  (* Halve delay windows while the case still fails. *)
  let rec soften c =
    let softened = ref false in
    let inj =
      List.map
        (function
          | Fault.Delay { step; txn; ticks } when ticks > 1 ->
              softened := true;
              Fault.Delay { step; txn; ticks = ticks / 2 }
          | i -> i)
        c.c_plan.Fault.injections
    in
    if not !softened then c
    else
      let cand = with_inj c inj in
      if fails cand then soften cand else c
  in
  (* Shorten a fixed trail from the back, then zero entries. *)
  let shrink_sched c =
    match c.c_plan.Fault.schedule with
    | Fault.Random_sched _ -> c
    | Fault.Fixed trail ->
        let rec truncate c trail =
          match List.rev trail with
          | [] -> c
          | _ :: rtl ->
              let shorter = List.rev rtl in
              let cand = with_sched c (Fault.Fixed shorter) in
              if fails cand then truncate cand shorter else c
        in
        let c = truncate c trail in
        let trail =
          match c.c_plan.Fault.schedule with Fault.Fixed t -> t | _ -> []
        in
        List.fold_left
          (fun c i ->
            let trail =
              match c.c_plan.Fault.schedule with Fault.Fixed t -> t | _ -> []
            in
            if i >= List.length trail || List.nth trail i = 0 then c
            else
              let cand =
                with_sched c
                  (Fault.Fixed (List.mapi (fun j v -> if j = i then 0 else v) trail))
              in
              if fails cand then cand else c)
          c
          (List.init (List.length trail) Fun.id)
  in
  let pass c = shrink_sched (soften (drop_injections c)) in
  let rec fix c =
    let c' = pass c in
    if c' = c then c else fix c'
  in
  fix case

let to_command ~workload ~scheme ?policy case =
  Printf.sprintf "oosim chaos --workload %s --scheme %s%s --seed %d --replay '%s'"
    workload scheme
    (match policy with None -> "" | Some p -> " --policy " ^ p)
    case.c_seed
    (Fault.to_string case.c_plan)
