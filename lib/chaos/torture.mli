(** The torture harness: one engine run under a fault plan, with every
    oracle checked.

    A torture run executes a workload through {!Tavcc_sim.Engine} with
    the chaos hooks installed and, {e concurrently}, shadows every data
    access into a {!Tavcc_recovery.Manager} over a mirror store, so the
    run produces a real write-ahead log.  Crash injections never stop
    the run: the harness records the disk image a crash at that boundary
    would leave and, after the run, recovers from {e every} such image
    (the crash matrix) — one execution services hundreds of crash
    points.

    Oracles, all checked by {!run}:
    - the committed projection of the history is conflict-serializable;
    - the mirror store (WAL-managed) equals the engine store at the end;
    - recovering from the full log equals the final state;
    - for every crash point [k], recovering from the first [k] records
      equals replaying exactly the committed-transaction prefix of those
      records, in commit order, over the initial state;
    - every torn-tail cut decodes to the longest whole-record prefix and
      recovers to that prefix's committed state;
    - under a versioned scheme ([mvcc-tav]), every chain's timestamps
      strictly descend, its newest version equals the final live slot,
      and at every crash point the version visible at the prefix's
      highest committed publish timestamp equals the committed-prefix
      replay — the version store serves any crash point as a consistent
      snapshot.

    Violations are collected, not raised; {!ok} folds them up. *)

open Tavcc_lang
open Tavcc_model

(** A named, replayable workload: [w_build] must be deterministic (equal
    stores, object ids and jobs on every call) — the harness rebuilds it
    to obtain the mirror store and the pristine base state recoveries
    start from. *)
type workload = {
  w_name : string;
  w_schema : Ast.body Schema.t;
  w_build : unit -> Ast.body Store.t * (int * Tavcc_cc.Exec.action list) list;
  mutable w_an : Tavcc_core.Analysis.t option;  (** memoised compile *)
}

val analysis : workload -> Tavcc_core.Analysis.t

val escalation_workload : ?levels:int -> ?txns:int -> unit -> workload
(** The E4 reader-then-writer cascade: [txns] transactions sending
    [m{levels}] to one shared chain instance (problem P3's deadlock
    breeding ground). *)

val slices_workload :
  ?methods:int -> ?work:int -> ?instances:int -> ?txns:int ->
  ?actions_per_txn:int -> ?hot:int -> ?seed:int -> unit -> workload
(** The E16 sliced-field grid: disjoint under field modes, fully
    contended under instance modes. *)

val mixed_slices_workload :
  ?methods:int -> ?work:int -> ?instances:int -> ?txns:int ->
  ?actions_per_txn:int -> ?hot:int -> ?read_frac:float -> ?seed:int -> unit -> workload
(** The sliced grid with reader methods: with probability [read_frac]
    (default 0.5) a transaction is whole-transaction read-only —
    snapshot-eligible under [mvcc-tav], a plain reader elsewhere. *)

val random_workload :
  ?seed:int -> ?txns:int -> ?actions_per_txn:int -> ?per_class:int -> unit -> workload
(** A generated schema with random single-instance and extent calls. *)

val schemes : (string * (Tavcc_core.Analysis.t -> Tavcc_cc.Scheme.t)) list
(** Every concurrency-control scheme under test, by CLI name — the same
    eight the [oosim] comparisons run.  [mvcc-tav] is built with
    unbounded version chains so the crash-prefix oracle can read
    historical versions. *)

type report = {
  r_workload : string;
  r_scheme : string;
  r_seed : int;
  r_plan : string;  (** {!Fault.to_string} of the plan that ran *)
  r_commits : int;
  r_aborts : int;
  r_forced_aborts : int;  (** chaos-injected aborts that actually fired *)
  r_delays_honoured : int;  (** scheduler picks diverted by a delay injection *)
  r_grants : int;  (** lock grants observed (the grant virtual clock) *)
  r_wal_appends : int;
  r_wal_flushes : int;
  r_crash_points : int;  (** distinct log prefixes recovered and checked *)
  r_torn_points : int;  (** byte-level torn-tail cuts checked *)
  r_serializable : bool;
  r_failed : (int * string) list;  (** transactions the engine gave up on *)
  r_violations : string list;  (** oracle violations, oldest first *)
  r_event_hash : string;
      (** digest of the full observable event stream (accesses, grants,
          WAL traffic, scheduling picks): equal hashes mean bit-for-bit
          equal runs *)
  r_final_dump : string;  (** canonical printable final store state *)
  r_ready_sizes : int list;
      (** ready-set size at each scheduler pick, oldest first — the
          explorer derives preemption points from this *)
}

val ok : report -> bool
(** No violations, serializable, and no failed transactions. *)

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> Tavcc_obs.Json.t

val run :
  ?policy:Tavcc_sim.Engine.deadlock_policy ->
  ?yield_on_access:bool ->
  ?crash_matrix:bool ->
  ?torn_per_flush:int ->
  ?metrics:Tavcc_obs.Metrics.t ->
  scheme_name:string ->
  scheme:(Tavcc_core.Analysis.t -> Tavcc_cc.Scheme.t) ->
  workload:workload ->
  seed:int ->
  plan:Fault.plan ->
  unit ->
  report
(** One torture run.  [yield_on_access] defaults to [true] (finest
    interleavings); [crash_matrix] (default [true]) recovers from every
    record prefix of the log — when [false], only the plan's explicit
    crash injections are checked; [torn_per_flush] (default 2) adds that
    many deterministic byte cuts per WAL force on top of the plan's
    [Torn_flush] injections.  With [metrics], chaos counters go to the
    registry: [chaos.crash_points], [chaos.torn_points],
    [chaos.recoveries], [chaos.grants], [chaos.forced_aborts],
    [chaos.delays], [chaos.violations]. *)

val par_differential :
  scheme_name:string ->
  scheme:(Tavcc_core.Analysis.t -> Tavcc_cc.Scheme.t) ->
  workload:workload ->
  expect:string ->
  unit ->
  string list
(** Runs the same jobs through {!Tavcc_par.Par_engine} on a {e single}
    worker domain (one shard, no backoff, history recorded) — a
    deterministic sequential execution through the real multicore
    driver — and returns oracle violations: the recorded history must be
    conflict-serializable, every transaction must commit, and the final
    store must equal [expect] (the step engine's {!report.r_final_dump};
    workload writes commute, so any serializable order agrees). *)
