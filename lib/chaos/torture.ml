open Tavcc_model
open Tavcc_lang
open Tavcc_sim
open Tavcc_recovery
open Tavcc_lock
module Manager = Recovery.Manager
module Restart = Recovery.Restart

(* --- workloads --- *)

type workload = {
  w_name : string;
  w_schema : Ast.body Schema.t;
  w_build : unit -> Ast.body Store.t * (int * Tavcc_cc.Exec.action list) list;
  mutable w_an : Tavcc_core.Analysis.t option;
}

let analysis w =
  match w.w_an with
  | Some an -> an
  | None ->
      let an = Tavcc_core.Analysis.compile w.w_schema in
      w.w_an <- Some an;
      an

let escalation_workload ?(levels = 3) ?(txns = 6) () =
  let schema = Workload.chain_schema ~levels in
  let build () =
    let store = Store.create schema in
    let oid = Store.new_instance store (Name.Class.of_string "chain") in
    let top = Name.Method.of_string (Printf.sprintf "m%d" levels) in
    let jobs =
      List.init txns (fun i ->
          (i + 1, [ Tavcc_cc.Exec.Call (oid, top, [ Value.Vint 1 ]) ]))
    in
    (store, jobs)
  in
  { w_name = "escalation"; w_schema = schema; w_build = build; w_an = None }

let slices_workload ?(methods = 4) ?(work = 2) ?(instances = 2) ?(txns = 6)
    ?(actions_per_txn = 2) ?(hot = 2) ?(seed = 7) () =
  let schema = Workload.slice_schema ~methods ~work () in
  let build () =
    let store = Store.create schema in
    Workload.populate store ~per_class:instances;
    let jobs =
      Workload.slice_jobs (Rng.create seed) store ~txns ~actions_per_txn
        ~hot_instances:hot
    in
    (store, jobs)
  in
  { w_name = "slices"; w_schema = schema; w_build = build; w_an = None }

let mixed_slices_workload ?(methods = 4) ?(work = 2) ?(instances = 2) ?(txns = 8)
    ?(actions_per_txn = 2) ?(hot = 2) ?(read_frac = 0.5) ?(seed = 7) () =
  let schema = Workload.slice_schema ~readers:methods ~methods ~work () in
  let build () =
    let store = Store.create schema in
    Workload.populate store ~per_class:instances;
    let jobs =
      Workload.mixed_slice_jobs (Rng.create seed) store ~txns ~actions_per_txn
        ~hot_instances:hot ~read_frac
    in
    (store, jobs)
  in
  { w_name = "mixed-slices"; w_schema = schema; w_build = build; w_an = None }

let random_workload ?(seed = 11) ?(txns = 5) ?(actions_per_txn = 3) ?(per_class = 2) () =
  let schema =
    Workload.make_schema (Rng.create seed)
      { Workload.default_params with sp_depth = 2; sp_fanout = 2 }
  in
  let build () =
    let store = Store.create schema in
    Workload.populate store ~per_class;
    let jobs =
      Workload.random_jobs (Rng.create (seed + 1)) store ~txns ~actions_per_txn
        ~extent_prob:0.2 ~hot_instances:3 ~hot_prob:0.7
    in
    (store, jobs)
  in
  { w_name = "random"; w_schema = schema; w_build = build; w_an = None }

let mvcc_tav_scheme an =
  (* Unbounded chains: the crash-prefix oracle reads historical versions. *)
  Tavcc_mvcc.Mvcc_tav.scheme
    ~config:
      {
        Tavcc_mvcc.Mvcc_tav.gc_keep = max_int;
        contention = Tavcc_mvcc.Contention.default_cfg;
      }
    an

let schemes =
  [
    ("tav", Tavcc_cc.Tav_modes.scheme);
    ("tav-pre", Tavcc_cc.Tav_preclaim.scheme);
    ("rw-msg", Tavcc_cc.Rw_instance.scheme);
    ("rw-top", Tavcc_cc.Rw_toponly.scheme);
    ("rw-impl", Tavcc_cc.Rw_implicit.scheme);
    ("field-rt", Tavcc_cc.Field_runtime.scheme);
    ("relational", Tavcc_cc.Relational.scheme);
    ("mvcc-tav", mvcc_tav_scheme);
  ]

(* --- canonical store dump --- *)

let dump store =
  let schema = Store.schema store in
  let b = Buffer.create 256 in
  List.iter
    (fun cls ->
      List.iter
        (fun oid ->
          Buffer.add_string b
            (Printf.sprintf "%d:%s{" (Oid.to_int oid) (Name.Class.to_string cls));
          List.iter
            (fun (fd : Schema.field_def) ->
              Buffer.add_string b
                (Format.asprintf "%s=%a;" (Name.Field.to_string fd.Schema.f_name)
                   Value.pp
                   (Store.read store oid fd.Schema.f_name)))
            (Schema.fields schema cls);
          Buffer.add_string b "}\n")
        (List.sort
           (fun a b -> compare (Oid.to_int a) (Oid.to_int b))
           (Store.extent store cls)))
    (List.sort Name.Class.compare (Schema.classes schema));
  Buffer.contents b

(* --- committed-prefix replay (the recovery truth) ---

   A transaction's durable effect is the update list of its {e
   committed incarnation}: engine restarts reuse ids, so a [Begin]
   resets the pending list and only a [Commit] freezes it.  Under
   strict 2PL, conflicting writes of distinct transactions are ordered
   consistently with commit order, so applying the frozen lists in
   commit order reproduces the field-level final state; aborted and
   loser incarnations (and their CLRs) net to nothing and are ignored. *)

let committed_replay store log =
  let pending = Hashtbl.create 8 in
  let committed = ref [] in
  List.iter
    (fun (r : Wal.record) ->
      match r with
      | Wal.Begin t -> Hashtbl.replace pending t []
      | Wal.Update { txn; oid; field; after; _ } -> (
          match Hashtbl.find_opt pending txn with
          | Some l -> Hashtbl.replace pending txn ((oid, field, after) :: l)
          | None -> ())
      (* Insert/Delete never occur in mirror logs (the in-memory Manager
         logs field updates only). *)
      | Wal.Clr _ | Wal.Insert _ | Wal.Delete _ -> ()
      | Wal.Commit t -> (
          match Hashtbl.find_opt pending t with
          | Some l ->
              committed := List.rev l :: !committed;
              Hashtbl.remove pending t
          | None -> ())
      | Wal.Abort t -> Hashtbl.remove pending t
      | Wal.Checkpoint _ -> ())
    log;
  List.iter
    (fun updates ->
      List.iter (fun (oid, field, after) -> Store.write store oid field after) updates)
    (List.rev !committed)

(* --- the report --- *)

type report = {
  r_workload : string;
  r_scheme : string;
  r_seed : int;
  r_plan : string;
  r_commits : int;
  r_aborts : int;
  r_forced_aborts : int;
  r_delays_honoured : int;
  r_grants : int;
  r_wal_appends : int;
  r_wal_flushes : int;
  r_crash_points : int;
  r_torn_points : int;
  r_serializable : bool;
  r_failed : (int * string) list;
  r_violations : string list;
  r_event_hash : string;
  r_final_dump : string;
  r_ready_sizes : int list;
}

let ok r = r.r_violations = [] && r.r_serializable && r.r_failed = []

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s/%s seed=%d plan=%s@,\
     commits=%d aborts=%d forced=%d delays=%d grants=%d@,\
     wal: %d appends, %d flushes; %d crash points, %d torn points@,\
     serializable=%b failed=%d violations=%d hash=%s@]" r.r_workload r.r_scheme
    r.r_seed r.r_plan r.r_commits r.r_aborts r.r_forced_aborts r.r_delays_honoured
    r.r_grants r.r_wal_appends r.r_wal_flushes r.r_crash_points r.r_torn_points
    r.r_serializable
    (List.length r.r_failed)
    (List.length r.r_violations)
    r.r_event_hash;
  List.iter (fun v -> Format.fprintf ppf "@,  violation: %s" v) r.r_violations

let report_to_json r =
  let open Tavcc_obs.Json in
  Obj
    [
      ("workload", String r.r_workload);
      ("scheme", String r.r_scheme);
      ("seed", Int r.r_seed);
      ("plan", String r.r_plan);
      ("commits", Int r.r_commits);
      ("aborts", Int r.r_aborts);
      ("forced_aborts", Int r.r_forced_aborts);
      ("delays_honoured", Int r.r_delays_honoured);
      ("grants", Int r.r_grants);
      ("wal_appends", Int r.r_wal_appends);
      ("wal_flushes", Int r.r_wal_flushes);
      ("crash_points", Int r.r_crash_points);
      ("torn_points", Int r.r_torn_points);
      ("serializable", Bool r.r_serializable);
      ("failed", Int (List.length r.r_failed));
      ("violations", List (List.map (fun v -> String v) r.r_violations));
      ("event_hash", String r.r_event_hash);
      ("ok", Bool (ok r));
    ]

(* --- the run --- *)

let take_first n l = List.filteri (fun i _ -> i < n) l

let run ?(policy = Engine.Detect) ?(yield_on_access = true) ?(crash_matrix = true)
    ?(torn_per_flush = 2) ?metrics ~scheme_name ~scheme ~workload ~seed
    ~(plan : Fault.plan) () =
  let an = analysis workload in
  let store, jobs = workload.w_build () in
  let mstore, _ = workload.w_build () in
  let wal = Wal.create ?metrics () in
  let mgr = Manager.create mstore wal in
  let snap = Manager.checkpoint mgr in
  let hb = Buffer.create 4096 in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let tick =
    match metrics with
    | None -> fun _ _ -> ()
    | Some m ->
        let module Mx = Tavcc_obs.Metrics in
        let handles = Hashtbl.create 8 in
        fun name n ->
          let c =
            match Hashtbl.find_opt handles name with
            | Some c -> c
            | None ->
                let c = Mx.counter m name in
                Hashtbl.add handles name c;
                c
          in
          Mx.add c n
  in
  (* WAL virtual clock: ordinals of appends and flushes, flush spans for
     torn tails, requested crash images. *)
  let appends = ref 0 and flushes = ref 0 in
  let prev_stable = ref (Wal.stable_lsn wal) in
  let flush_spans = ref [] (* (ordinal, lo, hi), newest first *) in
  let requested_lsns = ref [] in
  let want_append =
    List.filter_map
      (function Fault.Crash_at_append n -> Some n | _ -> None)
      plan.Fault.injections
  and want_flush =
    List.filter_map
      (function Fault.Crash_at_flush n -> Some n | _ -> None)
      plan.Fault.injections
  in
  Wal.set_observer wal
    (Some
       (fun ev ->
         match ev with
         | Wal.Appended (_, lsn) ->
             incr appends;
             Buffer.add_string hb (Printf.sprintf "wA%d@%d;" !appends lsn);
             if List.mem !appends want_append then
               requested_lsns := Wal.stable_lsn wal :: !requested_lsns
         | Wal.Flushed lsn ->
             incr flushes;
             Buffer.add_string hb (Printf.sprintf "wF%d@%d;" !flushes lsn);
             if lsn > !prev_stable then
               flush_spans := (!flushes, !prev_stable, lsn) :: !flush_spans;
             prev_stable := lsn;
             if List.mem !flushes want_flush then
               requested_lsns := lsn :: !requested_lsns));
  (* Scheduling hooks. *)
  let delays =
    List.filter_map
      (function
        | Fault.Delay { step; txn; ticks } -> Some (step, txn, ticks) | _ -> None)
      plan.Fault.injections
  in
  let delays_honoured = ref 0 in
  let sched_rng =
    match plan.Fault.schedule with
    | Fault.Random_sched s -> Some (Rng.create s)
    | Fault.Fixed _ -> None
  in
  let trail =
    match plan.Fault.schedule with
    | Fault.Fixed t -> Array.of_list t
    | Fault.Random_sched _ -> [||]
  in
  let picks = ref 0 in
  let ready_sizes = ref [] in
  let hk_pick =
    Some
      (fun ~step ~ready ->
        ready_sizes := List.length ready :: !ready_sizes;
        let avail =
          let undelayed =
            List.filter
              (fun id ->
                not
                  (List.exists
                     (fun (s, txn, ticks) ->
                       id = txn && step >= s && step < s + ticks)
                     delays))
              ready
          in
          if undelayed = [] then ready
          else begin
            if List.length undelayed < List.length ready then incr delays_honoured;
            undelayed
          end
        in
        let chosen =
          match sched_rng with
          | Some rng -> Rng.pick rng avail
          | None ->
              let i =
                if !picks < Array.length trail then
                  ((trail.(!picks) mod List.length avail) + List.length avail)
                  mod List.length avail
                else 0
              in
              List.nth avail i
        in
        incr picks;
        Buffer.add_string hb (Printf.sprintf "p%d@%d;" chosen step);
        chosen)
  in
  let forced =
    ref
      (List.filter_map
         (function
           | Fault.Forced_abort { step; txn } -> Some (step, txn) | _ -> None)
         plan.Fault.injections)
  in
  let forced_fired = ref 0 in
  let hk_forced_abort =
    match !forced with
    | [] -> None
    | _ ->
        Some
          (fun ~step ~eligible ->
            let fire, keep =
              List.partition
                (fun (s, t) -> step >= s && List.mem t eligible)
                !forced
            in
            forced := keep;
            forced_fired := !forced_fired + List.length fire;
            List.iter
              (fun (_, t) -> Buffer.add_string hb (Printf.sprintf "X%d@%d;" t step))
              fire;
            List.map snd fire)
  in
  let grants = ref 0 in
  let hk_on_grant =
    Some
      (fun (req : Lock_table.req) ->
        incr grants;
        Buffer.add_string hb (Printf.sprintf "g%d;" req.Lock_table.r_txn))
  in
  (* The mirror bridge: shadow every access into the logging manager.
     Bridge failures are oracle violations, never exceptions — raising
     from a hook would kill the observed fiber and corrupt the very
     state the oracles compare. *)
  let bridge name f = try f () with e -> violation "%s: %s" name (Printexc.to_string e) in
  let hk_observe =
    Some
      (fun (a : Engine.access) ->
        match a with
        | Engine.Ob_begin t ->
            Buffer.add_string hb (Printf.sprintf "B%d;" t);
            bridge "mirror begin" (fun () -> Manager.begin_txn mgr t)
        | Engine.Ob_read (t, oid, f) ->
            Buffer.add_string hb
              (Printf.sprintf "r%d:%d.%s;" t (Oid.to_int oid) (Name.Field.to_string f))
        | Engine.Ob_write { txn; oid; field; before; after } ->
            Buffer.add_string hb
              (Format.asprintf "w%d:%d.%s=%a;" txn (Oid.to_int oid)
                 (Name.Field.to_string field) Value.pp after);
            bridge "mirror write" (fun () ->
                let mirror_before = Manager.read mgr ~txn oid field in
                if not (Value.equal mirror_before before) then
                  violation
                    "mirror divergence at t%d %d.%s: engine before-image %s, mirror holds %s"
                    txn (Oid.to_int oid) (Name.Field.to_string field)
                    (Format.asprintf "%a" Value.pp before)
                    (Format.asprintf "%a" Value.pp mirror_before);
                Manager.write mgr ~txn oid field after)
        | Engine.Ob_commit t ->
            Buffer.add_string hb (Printf.sprintf "C%d;" t);
            bridge "mirror commit" (fun () -> Manager.commit mgr t)
        | Engine.Ob_abort t ->
            Buffer.add_string hb (Printf.sprintf "A%d;" t);
            bridge "mirror abort" (fun () -> Manager.abort mgr t))
  in
  let hooks = { Engine.hk_pick; hk_forced_abort; hk_on_grant; hk_observe; hk_probe = None } in
  let config =
    { Engine.default_config with seed; yield_on_access; policy; hooks; metrics }
  in
  let sch = scheme an in
  let res = Engine.run ~config ~scheme:sch ~store ~jobs () in
  Wal.set_observer wal None;
  let serializable = Engine.serializable res in
  if not serializable then violation "history not conflict-serializable";
  List.iter
    (fun (id, msg) -> violation "transaction %d failed: %s" id msg)
    res.Engine.failed;
  (* Oracle: the WAL-managed mirror tracked the engine store exactly. *)
  let engine_dump = dump store in
  let mirror_dump = dump mstore in
  if engine_dump <> mirror_dump then
    violation "mirror store diverges from engine store after the run";
  (* Oracles for versioned schemes: every chain's timestamps strictly
     descend and its newest version equals the live slot (all committed
     writers publish, so the head of each chain is the last committed
     write). *)
  let mv_chains =
    match sch.Tavcc_cc.Scheme.mvcc with
    | None -> None
    | Some m -> Some (m.Tavcc_cc.Scheme.mv_dump ())
  in
  (match mv_chains with
  | None -> ()
  | Some chains ->
      List.iter
        (fun (oid, f, versions) ->
          let rec descending = function
            | (a, _) :: ((b, _) :: _ as rest) -> a > b && descending rest
            | _ -> true
          in
          if not (descending versions) then
            violation "version chain %d.%s: timestamps not strictly decreasing"
              (Oid.to_int oid) (Name.Field.to_string f);
          match versions with
          | (_, v) :: _ ->
              let lv = Store.read store oid f in
              if not (Value.equal v lv) then
                violation "version chain %d.%s: newest value %s, live slot holds %s"
                  (Oid.to_int oid) (Name.Field.to_string f)
                  (Format.asprintf "%a" Value.pp v)
                  (Format.asprintf "%a" Value.pp lv)
          | [] -> ())
        chains);
  (* Publish timestamps of committed transactions, for the crash-prefix
     version oracle.  Only committed incarnations publish, and each id
     commits once, so a flat scan suffices. *)
  let publish_ts = Hashtbl.create 16 in
  (match mv_chains with
  | None -> ()
  | Some _ ->
      List.iter
        (function
          | Tavcc_txn.History.Publish (t, ts) -> Hashtbl.replace publish_ts t ts
          | _ -> ())
        (Tavcc_txn.History.ops res.Engine.history));
  (* Oracle: recovering from the full (forced) log reproduces the final
     state. *)
  Wal.flush wal;
  let full_log = Wal.all wal in
  (try
     let rstore, _ = workload.w_build () in
     Restart.recover ?metrics rstore snap full_log;
     if dump rstore <> mirror_dump then
       violation "full-log recovery diverges from the final state"
   with e -> violation "full-log recovery raised: %s" (Printexc.to_string e));
  tick "chaos.recoveries" 1;
  (* The crash matrix: recover from every record prefix (or only the
     plan's requested images) and compare against committed-prefix
     replay. *)
  let truth_store k =
    let expect, _ = workload.w_build () in
    committed_replay expect (take_first k full_log);
    expect
  in
  let truth_dump k = dump (truth_store k) in
  let crash_points = ref 0 in
  let check_prefix k =
    incr crash_points;
    tick "chaos.crash_points" 1;
    tick "chaos.recoveries" 1;
    try
      let truth = truth_store k in
      let rs, _ = workload.w_build () in
      Restart.recover rs snap (take_first k full_log);
      if dump rs <> dump truth then
        violation "crash at lsn %d: recovery diverges from committed-prefix replay" k;
      (* Versioned schemes: the snapshot at the prefix's highest committed
         publish timestamp must equal the committed-prefix replay — the
         version store can serve any crash point as a consistent
         snapshot.  Publish order matches WAL commit order (both happen
         in the same atomic commit step), so the prefix's committed set
         is exactly the set of publishers at or below [ts_k]. *)
      match mv_chains with
      | None -> ()
      | Some chains ->
          let ts_k =
            List.fold_left
              (fun acc (r : Wal.record) ->
                match r with
                | Wal.Commit t -> (
                    match Hashtbl.find_opt publish_ts t with
                    | Some ts -> max acc ts
                    | None -> acc)
                | _ -> acc)
              0 (take_first k full_log)
          in
          List.iter
            (fun (oid, f, versions) ->
              match List.find_opt (fun (ts, _) -> ts <= ts_k) versions with
              | None -> ()
              | Some (_, v) ->
                  let tv = Store.read truth oid f in
                  if not (Value.equal v tv) then
                    violation
                      "crash at lsn %d: version of %d.%s visible at ts %d is %s, \
                       committed-prefix replay holds %s"
                      k (Oid.to_int oid) (Name.Field.to_string f) ts_k
                      (Format.asprintf "%a" Value.pp v)
                      (Format.asprintf "%a" Value.pp tv))
            chains
    with e -> violation "crash at lsn %d: recovery raised %s" k (Printexc.to_string e)
  in
  let n = List.length full_log in
  if crash_matrix then
    for k = 0 to n do
      check_prefix k
    done
  else
    List.iter check_prefix
      (List.sort_uniq compare (List.rev !requested_lsns));
  (* Torn tails: cut the byte image inside a record of a flushed span;
     the decoder must surface exactly the whole records before the cut
     and recovery from them must match that prefix's truth. *)
  let torn_points = ref 0 in
  let check_torn ~j ~keep =
    match List.nth_opt full_log (j - 1) with
    | None -> ()
    | Some torn_rec ->
        incr torn_points;
        tick "chaos.torn_points" 1;
        tick "chaos.recoveries" 1;
        let frame = Codec.encode_record torn_rec in
        let keep = max 1 (min keep (String.length frame - 1)) in
        let bytes =
          Codec.encode (take_first (j - 1) full_log) ^ String.sub frame 0 keep
        in
        let decoded = Codec.decode bytes in
        if List.length decoded <> j - 1 then
          violation "torn cut in record %d (keeping %d bytes) decoded %d records, expected %d"
            j keep (List.length decoded) (j - 1)
        else (
          try
            let rs, _ = workload.w_build () in
            Restart.recover rs snap decoded;
            if dump rs <> truth_dump (j - 1) then
              violation "torn tail at record %d: recovery diverges from committed-prefix replay" j
          with e ->
            violation "torn tail at record %d: recovery raised %s" j
              (Printexc.to_string e))
  in
  let spans = List.rev !flush_spans in
  List.iter
    (function
      | Fault.Torn_flush { nth; keep } -> (
          match List.find_opt (fun (o, _, _) -> o = nth) spans with
          | Some (_, _, hi) -> check_torn ~j:hi ~keep
          | None -> ())
      | _ -> ())
    plan.Fault.injections;
  if torn_per_flush > 0 then
    List.iter
      (fun (ordinal, lo, hi) ->
        let rng = Rng.create ((seed * 1_000_003) + ordinal) in
        for _ = 1 to torn_per_flush do
          let j = lo + 1 + Rng.int rng (hi - lo) in
          match List.nth_opt full_log (j - 1) with
          | None -> ()
          | Some r ->
              let len = String.length (Codec.encode_record r) in
              check_torn ~j ~keep:(1 + Rng.int rng (len - 1))
        done)
      spans;
  tick "chaos.grants" !grants;
  tick "chaos.forced_aborts" !forced_fired;
  tick "chaos.delays" !delays_honoured;
  tick "chaos.violations" (List.length !violations);
  {
    r_workload = workload.w_name;
    r_scheme = scheme_name;
    r_seed = seed;
    r_plan = Fault.to_string plan;
    r_commits = res.Engine.commits;
    r_aborts = res.Engine.aborts;
    r_forced_aborts = !forced_fired;
    r_delays_honoured = !delays_honoured;
    r_grants = !grants;
    r_wal_appends = !appends;
    r_wal_flushes = !flushes;
    r_crash_points = !crash_points;
    r_torn_points = !torn_points;
    r_serializable = serializable;
    r_failed = res.Engine.failed;
    r_violations = List.rev !violations;
    r_event_hash = Digest.to_hex (Digest.string (Buffer.contents hb));
    r_final_dump = engine_dump;
    r_ready_sizes = List.rev !ready_sizes;
  }

(* --- the multicore driver, pinned to one domain ---

   With a single worker the job cursor dispenses transactions strictly
   in list order and each runs to completion before the next starts: a
   deterministic serial execution through the real Par_engine machinery
   (shard table, detector domain and all).  Commuting workload writes
   make its final state comparable to any serializable step-engine
   run. *)

let par_differential ~scheme_name ~scheme ~workload ~expect () =
  let an = analysis workload in
  let store, jobs = workload.w_build () in
  let config =
    {
      Tavcc_par.Par_engine.default_config with
      domains = 1;
      shards = 1;
      record_history = true;
      restart_backoff_us = 0;
    }
  in
  let r = Tavcc_par.Par_engine.run ~config ~scheme:(scheme an) ~store ~jobs () in
  let v = ref [] in
  if not (Tavcc_par.Par_engine.serializable r) then
    v := Printf.sprintf "par(%s): history not conflict-serializable" scheme_name :: !v;
  List.iter
    (fun (id, msg) ->
      v := Printf.sprintf "par(%s): transaction %d failed: %s" scheme_name id msg :: !v)
    r.Tavcc_par.Par_engine.failed;
  if dump store <> expect then
    v :=
      Printf.sprintf "par(%s): single-domain final state diverges from the step engine"
        scheme_name
      :: !v;
  List.rev !v
