type injection =
  | Crash_at_append of int
  | Crash_at_flush of int
  | Torn_flush of { nth : int; keep : int }
  | Delay of { step : int; txn : int; ticks : int }
  | Forced_abort of { step : int; txn : int }
  | Crash_at_page_write of int
  | Torn_page of { nth : int; keep : int }
  | Crash_in_checkpoint of int

type schedule = Random_sched of int | Fixed of int list

type plan = { injections : injection list; schedule : schedule }

let none = { injections = []; schedule = Random_sched 0 }

let injection_to_string = function
  | Crash_at_append n -> Printf.sprintf "ca:%d" n
  | Crash_at_flush n -> Printf.sprintf "cf:%d" n
  | Torn_flush { nth; keep } -> Printf.sprintf "torn:%d:%d" nth keep
  | Delay { step; txn; ticks } -> Printf.sprintf "delay:%d:%d:%d" step txn ticks
  | Forced_abort { step; txn } -> Printf.sprintf "abort:%d:%d" step txn
  | Crash_at_page_write n -> Printf.sprintf "cpw:%d" n
  | Torn_page { nth; keep } -> Printf.sprintf "tpg:%d:%d" nth keep
  | Crash_in_checkpoint n -> Printf.sprintf "cck:%d" n

let schedule_to_string = function
  | Random_sched seed -> Printf.sprintf "r:%d" seed
  | Fixed trail -> "f:" ^ String.concat "." (List.map string_of_int trail)

let to_string { injections; schedule } =
  String.concat ";" (schedule_to_string schedule :: List.map injection_to_string injections)

let bad part = invalid_arg (Printf.sprintf "Fault.of_string: malformed component %S" part)

let int_of part s = match int_of_string_opt s with Some n -> n | None -> bad part

let injection_of_string part =
  match String.split_on_char ':' part with
  | [ "ca"; n ] -> Crash_at_append (int_of part n)
  | [ "cf"; n ] -> Crash_at_flush (int_of part n)
  | [ "torn"; nth; keep ] -> Torn_flush { nth = int_of part nth; keep = int_of part keep }
  | [ "delay"; step; txn; ticks ] ->
      Delay { step = int_of part step; txn = int_of part txn; ticks = int_of part ticks }
  | [ "abort"; step; txn ] -> Forced_abort { step = int_of part step; txn = int_of part txn }
  | [ "cpw"; n ] -> Crash_at_page_write (int_of part n)
  | [ "tpg"; nth; keep ] -> Torn_page { nth = int_of part nth; keep = int_of part keep }
  | [ "cck"; n ] -> Crash_in_checkpoint (int_of part n)
  | _ -> bad part

let schedule_of_string part =
  match String.split_on_char ':' part with
  | [ "r"; seed ] -> Random_sched (int_of part seed)
  | [ "f"; "" ] -> Fixed []
  | [ "f"; trail ] ->
      Fixed (List.map (int_of part) (String.split_on_char '.' trail))
  | _ -> bad part

let of_string s =
  match List.filter (fun p -> p <> "") (String.split_on_char ';' (String.trim s)) with
  | [] -> invalid_arg "Fault.of_string: empty plan"
  | sched :: rest ->
      { schedule = schedule_of_string sched;
        injections = List.map injection_of_string rest }
