(** Byte-level framing of WAL records, for torn-tail simulation.

    {!Tavcc_recovery.Wal} keeps records as values; real logs are byte
    streams, and real crashes cut them at arbitrary byte offsets — most
    interestingly {e inside} the last record (a torn write).  This codec
    gives the in-memory log a faithful byte representation: each record
    is framed as

    {v <len:8 hex chars><checksum:8 hex chars><payload:len bytes> v}

    where the checksum covers the payload.  {!decode} scans frames and
    stops at the first incomplete or corrupt one, returning the longest
    valid record prefix — exactly the recovery-time behaviour of a real
    log scanner finding a torn tail.  The chaos harness encodes a flushed
    image, cuts it at a byte offset, decodes, and feeds the surviving
    prefix to {!Tavcc_recovery.Restart.recover}. *)

val encode_record : Tavcc_recovery.Wal.record -> string
(** One framed record. *)

val encode : Tavcc_recovery.Wal.record list -> string
(** The concatenation of the framed records, oldest first. *)

val decode : string -> Tavcc_recovery.Wal.record list
(** The longest prefix of well-formed frames: scanning stops (without
    raising) at a truncated header, a truncated payload, a checksum
    mismatch, or a payload that does not parse back to a record. *)

val decode_exact : string -> Tavcc_recovery.Wal.record list
(** Like {!decode} but refuses torn input.
    @raise Invalid_argument unless the whole string is consumed *)
