(** Schedule and fault exploration, and counterexample shrinking.

    The explorer owns no execution machinery: callers hand it a [run]
    function (normally a closure over {!Torture.run}) mapping a case to
    a report, and it decides which cases to try.  Everything is driven
    by seeds and plans, so any failing case it returns replays
    bit-for-bit. *)

type case = { c_seed : int; c_plan : Fault.plan }

val pp_case : Format.formatter -> case -> unit

val random_cases :
  base_seed:int -> runs:int -> txns:int list -> case list
(** [runs] randomized cases derived from [base_seed]: each gets a fresh
    engine seed, a fresh scheduler seed, and a small random brew of
    delay, forced-abort and torn-flush injections over the given
    transaction ids.  Case [i] is a pure function of [(base_seed, i)]. *)

val systematic_cases :
  seed:int -> ready_sizes:int list -> preemptions:int -> max_cases:int -> case list
(** Bounded-preemption enumeration around a recorded run: [ready_sizes]
    is the {!Torture.report.r_ready_sizes} trail of the base (all-sticky)
    schedule; every returned case perturbs at most [preemptions] of the
    steps that actually had a choice ([ready > 1]), covering alternative
    successors at each.  At most [max_cases] cases, in breadth-first
    (fewest-preemptions-first) order. *)

val find_failure :
  run:(case -> Torture.report) -> case list -> (case * Torture.report) option
(** First case whose report fails {!Torture.ok}, with its report. *)

val shrink : run:(case -> bool) -> case -> case
(** Greedy minimisation of a failing case ([run] must return [false] on
    it): repeatedly drops injections, shortens delays, and truncates or
    zeroes fixed-schedule trail entries, keeping every mutation that
    still fails, until a fixpoint.  The result still fails [run]. *)

val to_command :
  workload:string -> scheme:string -> ?policy:string -> case -> string
(** The replay incantation, e.g.
    ["oosim chaos --workload slices --scheme tav --seed 9 --replay 'r:3;abort:4:2'"]. *)
