(** The fault-plan DSL: a replayable description of what to inject.

    A plan names faults by {e virtual-clock} coordinates — WAL append and
    flush ordinals, scheduler steps — never wall time, so a (seed, plan)
    pair replays bit-for-bit.  Plans print to a compact string
    ([to_string]) that the [oosim chaos --replay] flag parses back
    ([of_string]); the shrinker works directly on the structure. *)

type injection =
  | Crash_at_append of int
      (** record the disk image as of the [n]-th WAL append (1-based) and
          verify recovery from it — the run continues counterfactually *)
  | Crash_at_flush of int  (** same, at the [n]-th WAL force *)
  | Torn_flush of { nth : int; keep : int }
      (** cut the byte image of the log after the [nth] flush, keeping
          [keep] bytes of the record the cut lands in — a torn write *)
  | Delay of { step : int; txn : int; ticks : int }
      (** from scheduler step [step] on, refuse to schedule [txn] for
          [ticks] steps whenever anything else is runnable — models a
          stalled lock grant / slow client *)
  | Forced_abort of { step : int; txn : int }
      (** abort [txn] externally at the first step [>= step] where it is
          parked or yielded, as a deadlock victim would be *)
  | Crash_at_page_write of int
      (** disk layer ({!Tavcc_storage}): crash immediately {e before} the
          [n]-th data-page write-back (1-based) — the WAL was already
          forced up to the page's LSN, the page image is the old one *)
  | Torn_page of { nth : int; keep : int }
      (** disk layer: the [nth] page write-back writes only [keep] bytes
          of the page image and then the process dies — a torn page the
          checksummed header must catch and the double-write buffer must
          repair *)
  | Crash_in_checkpoint of int
      (** disk layer: crash at the [n]-th IO event (1-based, counting
          WAL/page/dblwr/meta writes) {e inside} the next fuzzy
          checkpoint — if the checkpoint performs fewer IOs the crash
          fires at its end *)

(** How the pluggable scheduler picks among ready transactions. *)
type schedule =
  | Random_sched of int  (** seeded uniform choice, independent of the engine seed *)
  | Fixed of int list
      (** at step [i], pick ready transaction number [trail.(i) mod
          ready-count] (job order); past the end of the trail, pick the
          first — the sticky run-to-completion default the explorer
          perturbs *)

type plan = { injections : injection list; schedule : schedule }

val none : plan
(** No injections, [Random_sched 0]. *)

val to_string : plan -> string
(** E.g. ["r:42;ca:17;torn:3:9;delay:5:2:10;abort:9:3"] — the schedule
    first ([r:<seed>] or [f:<i>.<i>...]), then each injection:
    [ca:<n>] / [cf:<n>] for crashes, [torn:<nth>:<keep>],
    [delay:<step>:<txn>:<ticks>], [abort:<step>:<txn>], and the
    disk-layer points [cpw:<n>], [tpg:<nth>:<keep>], [cck:<n>]. *)

val of_string : string -> plan
(** Inverse of {!to_string}.  @raise Invalid_argument on a malformed
    plan string (the offending component is named). *)
