(** Write-ahead log with an explicit volatile/stable boundary.

    The paper notes (sec. 3) that access vectors double as {e projection
    patterns} for recovery: only the fields a method may write need
    before-images, and no programmer-supplied inverse operations are
    required.  This module provides the durable half of that story: an
    append-only log whose tail is volatile until {!flush}, so crash
    simulations can observe exactly the prefix a real system would find
    on disk.

    Records carry both before- and after-images, enabling the
    repeating-history restart of {!Restart}: redo everything, then undo
    the losers. *)

open Tavcc_model

type lsn = int
(** Log sequence number: the 0-based position of a record. *)

type record =
  | Begin of int
  | Update of {
      txn : int;
      oid : Oid.t;
      field : Name.Field.t;
      before : Value.t;
      after : Value.t;
    }
  | Clr of { txn : int; oid : Oid.t; field : Name.Field.t; after : Value.t }
      (** compensation record written while rolling an update back;
          redo-only — restart never undoes a CLR *)
  | Insert of {
      txn : int;
      oid : Oid.t;
      cls : Name.Class.t;
      slots : (Name.Field.t * Value.t) list;
    }
      (** instance creation, with its initial projection (the disk layer
          redoes it at the same oid; undo deletes the instance).  The
          in-memory {!Restart} ignores it — a volatile store cannot
          re-create at a fixed oid and never logs one. *)
  | Delete of {
      txn : int;
      oid : Oid.t;
      cls : Name.Class.t;
      slots : (Name.Field.t * Value.t) list;
    }
      (** instance removal carrying the full before-image so a loser's
          delete can be compensated by re-insertion *)
  | Commit of int
  | Abort of int
  | Checkpoint of int list  (** transaction ids active at the checkpoint *)

val pp_record : Format.formatter -> record -> unit

type t

val create : ?metrics:Tavcc_obs.Metrics.t -> unit -> t
(** With [metrics], the log counts its traffic into the registry:
    [wal.appends] (records appended) and [wal.flushes] (forces). *)

(** The boundary events a crash simulator keys off: every append to the
    volatile tail and every force of the stable prefix. *)
type event =
  | Appended of record * lsn
  | Flushed of lsn  (** the new {!stable_lsn} *)

val set_observer : t -> (event -> unit) option -> unit
(** Installs (or clears) the chaos hook.  The observer runs {e after} the
    mutation, so [Flushed n] sees [stable_lsn = n]; fault-injection
    harnesses use it as a virtual clock and to record the disk image a
    crash at that boundary would leave.  The observer must not mutate the
    log. *)

val append : t -> record -> lsn

val flush : t -> unit
(** Makes every appended record stable (the WAL force). *)

val stable_lsn : t -> lsn
(** The number of stable records; records at positions [>= stable_lsn]
    would be lost by a crash. *)

val stable : t -> record list
(** The crash-surviving prefix, oldest first. *)

val all : t -> record list
(** Stable and volatile records. *)

val length : t -> int
