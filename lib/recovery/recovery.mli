(** Crash recovery over the write-ahead log: snapshots, the logging
    transaction manager, and repeating-history restart.

    The model: the {e disk image} is a {!Snapshot.t} taken at some
    checkpoint plus the stable prefix of the {!Wal}; the running
    {!Tavcc_model.Store.t} is volatile.  A crash discards the store and
    the volatile log tail; {!Restart.recover} rebuilds the store from
    the snapshot by {e redoing} every stable update in order (repeating
    history, winners and losers alike) and then {e undoing}, backwards,
    the updates of every transaction without a stable [Commit].

    Updates are logged with before- and after-images at field
    granularity — precisely the projection the paper says access vectors
    make possible without programmer-supplied inverse operations. *)

open Tavcc_model

(** Full-store field-level images. *)
module Snapshot : sig
  type t

  val take : 'b Store.t -> t
  (** Captures class and field values of every live instance. *)

  val restore : 'b Store.t -> t -> unit
  (** Rewinds the store to the image: instances created since the
      snapshot are deleted, deleted ones are {e not} resurrected (the
      workloads under test do not delete), and every field is reset.

      {b Limitation (no-delete assumption).}  Snapshots capture field
      images, not creation records, so a snapshotted instance that was
      deleted after the snapshot cannot be rebuilt.  Rather than
      silently recovering a store with the instance missing — which
      would corrupt every committed update to it that restart would
      otherwise redo — [restore] (and therefore {!Restart.recover},
      which restores first) refuses the whole recovery.  Workloads that
      delete instances need logical creation/deletion logging, which
      the WAL does not carry.
      @raise Invalid_argument if a snapshotted instance no longer
      exists *)

  val instances : t -> (Oid.t * Name.Class.t) list
end

(** The logging transaction manager: every write goes through here so
    the WAL sees it before the store does. *)
module Manager : sig
  type 'b t

  val create : 'b Store.t -> Wal.t -> 'b t
  val store : 'b t -> 'b Store.t
  val log : 'b t -> Wal.t

  val begin_txn : 'b t -> int -> unit
  (** @raise Invalid_argument if the transaction is already active *)

  val write : 'b t -> txn:int -> Oid.t -> Name.Field.t -> Value.t -> unit
  (** Logs the update (before/after images), then applies it.
      @raise Invalid_argument if the transaction is not active *)

  val read : 'b t -> txn:int -> Oid.t -> Name.Field.t -> Value.t

  val commit : 'b t -> int -> unit
  (** Appends [Commit] and {e forces the log} (WAL rule: a transaction
      is durable exactly when its commit record is stable). *)

  val abort : 'b t -> int -> unit
  (** Rolls back through the log's before-images, appends [Abort], does
      not force. *)

  val checkpoint : 'b t -> Snapshot.t
  (** Takes a snapshot and logs a [Checkpoint] record.  Only safe (and
      only allowed) with no active transaction: a sharp checkpoint.
      Forces the log.
      @raise Invalid_argument if transactions are active *)

  val active : 'b t -> int list

  val crash_image : 'b t -> Wal.record list
  (** The disk as a crash right now would leave it: the stable prefix of
      the log.  Chaos harnesses pair this with the checkpoint snapshot
      to drive {!Restart.recover} at arbitrary points of a run; for
      byte-level crash points (torn tails) they instead encode the
      prefix and cut it mid-record. *)
end

module Restart : sig
  val recover :
    ?metrics:Tavcc_obs.Metrics.t -> 'b Store.t -> Snapshot.t -> Wal.record list -> unit
  (** [recover store snapshot log] rebuilds [store] to the state every
      stably-committed transaction produced: restore the snapshot, redo
      all updates in log order, undo losers backwards.  Idempotent.

      With [metrics], the pass sizes go to counters: [wal.replayed]
      (records scanned), [wal.redo_applied] and [wal.undo_applied]
      (writes performed by each pass). *)

  val losers : Wal.record list -> int list
  (** Transactions whose latest [Begin] has no later [Commit] or
      [Abort] — the incarnations that were still running at the crash. *)

  val committed : Wal.record list -> int list
  (** Transactions with a [Commit] record, in commit order. *)
end
