open Tavcc_model

type lsn = int

type record =
  | Begin of int
  | Update of {
      txn : int;
      oid : Oid.t;
      field : Name.Field.t;
      before : Value.t;
      after : Value.t;
    }
  | Clr of { txn : int; oid : Oid.t; field : Name.Field.t; after : Value.t }
  | Insert of {
      txn : int;
      oid : Oid.t;
      cls : Name.Class.t;
      slots : (Name.Field.t * Value.t) list;
    }
  | Delete of {
      txn : int;
      oid : Oid.t;
      cls : Name.Class.t;
      slots : (Name.Field.t * Value.t) list;
    }
  | Commit of int
  | Abort of int
  | Checkpoint of int list

let pp_slots ppf slots =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    (fun ppf (f, v) -> Format.fprintf ppf "%a=%a" Name.Field.pp f Value.pp v)
    ppf slots

let pp_record ppf = function
  | Begin t -> Format.fprintf ppf "begin(%d)" t
  | Update { txn; oid; field; before; after } ->
      Format.fprintf ppf "upd(%d,%a.%a:%a->%a)" txn Oid.pp oid Name.Field.pp field Value.pp
        before Value.pp after
  | Clr { txn; oid; field; after } ->
      Format.fprintf ppf "clr(%d,%a.%a:=%a)" txn Oid.pp oid Name.Field.pp field Value.pp after
  | Insert { txn; oid; cls; slots } ->
      Format.fprintf ppf "ins(%d,%a:%a{%a})" txn Oid.pp oid Name.Class.pp cls pp_slots slots
  | Delete { txn; oid; cls; slots } ->
      Format.fprintf ppf "del(%d,%a:%a{%a})" txn Oid.pp oid Name.Class.pp cls pp_slots slots
  | Commit t -> Format.fprintf ppf "commit(%d)" t
  | Abort t -> Format.fprintf ppf "abort(%d)" t
  | Checkpoint ts ->
      Format.fprintf ppf "ckpt{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        ts

(* Counter handles, resolved once at [create]. *)
type obs = { m_appends : Tavcc_obs.Metrics.counter; m_flushes : Tavcc_obs.Metrics.counter }

type event = Appended of record * lsn | Flushed of lsn

type t = {
  mutable records : record list (* newest first *);
  mutable n : int;
  mutable stable : int;
  obs : obs option;
  mutable observer : (event -> unit) option;
}

let create ?metrics () =
  let obs =
    Option.map
      (fun m ->
        {
          m_appends = Tavcc_obs.Metrics.counter m "wal.appends";
          m_flushes = Tavcc_obs.Metrics.counter m "wal.flushes";
        })
      metrics
  in
  { records = []; n = 0; stable = 0; obs; observer = None }

let set_observer t f = t.observer <- f

let notify t ev = match t.observer with None -> () | Some f -> f ev

let append t r =
  let lsn = t.n in
  t.records <- r :: t.records;
  t.n <- t.n + 1;
  (match t.obs with None -> () | Some o -> Tavcc_obs.Metrics.incr o.m_appends);
  notify t (Appended (r, lsn));
  lsn

let flush t =
  t.stable <- t.n;
  (match t.obs with None -> () | Some o -> Tavcc_obs.Metrics.incr o.m_flushes);
  notify t (Flushed t.stable)
let stable_lsn t = t.stable
let all t = List.rev t.records
let stable t = List.filteri (fun i _ -> i < t.stable) (all t)
let length t = t.n
