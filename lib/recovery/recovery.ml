open Tavcc_model

module Snapshot = struct
  type t = { images : (Oid.t * Name.Class.t * (Name.Field.t * Value.t) list) list }

  let take store =
    let schema = Store.schema store in
    let images =
      List.concat_map
        (fun cls ->
          List.map
            (fun oid ->
              let fields =
                List.map
                  (fun fd -> (fd.Schema.f_name, Store.read store oid fd.Schema.f_name))
                  (Schema.fields schema cls)
              in
              (oid, cls, fields))
            (Store.extent store cls))
        (Schema.classes schema)
    in
    { images }

  let restore store t =
    (* Drop instances born after the snapshot. *)
    let snapshotted = List.map (fun (oid, _, _) -> oid) t.images in
    let schema = Store.schema store in
    List.iter
      (fun cls ->
        List.iter
          (fun oid ->
            if not (List.exists (Oid.equal oid) snapshotted) then
              Store.delete_instance store oid)
          (Store.extent store cls))
      (Schema.classes schema);
    List.iter
      (fun (oid, _, fields) ->
        if not (Store.exists store oid) then
          invalid_arg "Snapshot.restore: snapshotted instance no longer exists";
        List.iter (fun (f, v) -> Store.write store oid f v) fields)
      t.images

  let instances t = List.map (fun (oid, cls, _) -> (oid, cls)) t.images
end

module Manager = struct
  type 'b t = {
    store : 'b Store.t;
    wal : Wal.t;
    mutable active : int list;
  }

  let create store wal = { store; wal; active = [] }
  let store t = t.store
  let log t = t.wal
  let active t = t.active

  let begin_txn t txn =
    if List.mem txn t.active then invalid_arg "Manager.begin_txn: already active";
    t.active <- t.active @ [ txn ];
    ignore (Wal.append t.wal (Wal.Begin txn))

  let require_active t txn =
    if not (List.mem txn t.active) then
      invalid_arg (Printf.sprintf "Manager: transaction %d is not active" txn)

  let write t ~txn oid field after =
    require_active t txn;
    let before = Store.read t.store oid field in
    ignore (Wal.append t.wal (Wal.Update { txn; oid; field; before; after }));
    Store.write t.store oid field after

  let read t ~txn oid field =
    require_active t txn;
    Store.read t.store oid field

  let commit t txn =
    require_active t txn;
    ignore (Wal.append t.wal (Wal.Commit txn));
    Wal.flush t.wal;
    t.active <- List.filter (( <> ) txn) t.active

  let abort t txn =
    require_active t txn;
    (* Roll back this incarnation's updates, newest first, logging a
       compensation record for each (so restart can repeat history). *)
    let rec roll = function
      | [] -> ()
      | Wal.Begin x :: _ when x = txn -> ()
      | Wal.Update { txn = x; oid; field; before; _ } :: tl when x = txn ->
          ignore (Wal.append t.wal (Wal.Clr { txn; oid; field; after = before }));
          Store.write t.store oid field before;
          roll tl
      | _ :: tl -> roll tl
    in
    roll (List.rev (Wal.all t.wal));
    ignore (Wal.append t.wal (Wal.Abort txn));
    t.active <- List.filter (( <> ) txn) t.active

  let crash_image t = Wal.stable t.wal

  let checkpoint t =
    if t.active <> [] then invalid_arg "Manager.checkpoint: transactions are active";
    let snap = Snapshot.take t.store in
    ignore (Wal.append t.wal (Wal.Checkpoint t.active));
    Wal.flush t.wal;
    snap
end

module Restart = struct
  let committed log =
    List.rev
      (List.fold_left
         (fun acc -> function Wal.Commit t -> t :: acc | _ -> acc)
         [] log)

  (* A transaction is a loser when its latest Begin has no later Commit
     or Abort: earlier incarnations ended in the log (their rollbacks are
     fully covered by CLRs and repeated by the redo pass). *)
  let losers log =
    let state = Hashtbl.create 8 in
    List.iter
      (function
        | Wal.Begin t -> Hashtbl.replace state t `Active
        | Wal.Commit t | Wal.Abort t -> Hashtbl.replace state t `Ended
        (* Insert/Delete only appear in disk-layer logs (lib/storage);
           they carry no begin/end information. *)
        | Wal.Update _ | Wal.Clr _ | Wal.Insert _ | Wal.Delete _ | Wal.Checkpoint _ -> ())
      log;
    Hashtbl.fold (fun t s acc -> if s = `Active then t :: acc else acc) state []
    |> List.sort Int.compare

  let recover ?metrics store snapshot log =
    let bump name n =
      match metrics with
      | None -> ()
      | Some m -> Tavcc_obs.Metrics.add (Tavcc_obs.Metrics.counter m name) n
    in
    Snapshot.restore store snapshot;
    (* Repeating history: redo every update and compensation, winners and
       losers alike. *)
    let redone = ref 0 in
    List.iter
      (function
        | Wal.Update { oid; field; after; _ } | Wal.Clr { oid; field; after; _ } ->
            if Store.exists store oid then begin
              Store.write store oid field after;
              incr redone
            end
        | _ -> ())
      log;
    (* Undo pass: the losers' live incarnations, backwards, stopping at
       each loser's Begin.  CLRs are redo-only and skipped. *)
    let open_ = Hashtbl.create 8 in
    List.iter (fun t -> Hashtbl.replace open_ t ()) (losers log);
    let undone = ref 0 in
    List.iter
      (function
        | Wal.Begin x when Hashtbl.mem open_ x -> Hashtbl.remove open_ x
        | Wal.Update { txn; oid; field; before; _ } when Hashtbl.mem open_ txn ->
            if Store.exists store oid then begin
              Store.write store oid field before;
              incr undone
            end
        | _ -> ())
      (List.rev log);
    bump "wal.replayed" (List.length log);
    bump "wal.redo_applied" !redone;
    bump "wal.undo_applied" !undone
end
