open Tavcc_model
open Tavcc_core
module CN = Name.Class
module FN = Name.Field
module MN = Name.Method
module Diag = Tavcc_analyze.Diag

type lookup = {
  lk_dav : Site.t -> Access_vector.t option;
  lk_tav : Site.t -> Access_vector.t option;
}

let of_analysis an =
  let guarded f (c, m) = match f an c m with av -> Some av | exception Invalid_argument _ -> None in
  { lk_dav = guarded Analysis.dav; lk_tav = guarded Analysis.tav }

type result = {
  r_diags : Diag.t list;
  r_dav_sites : int;
  r_tav_sites : int;
  r_checks : int;
}

let mode_name m = String.lowercase_ascii (Mode.to_string m)

(* The statement that performed the access: the first access of the field
   at the observed mode in the defining site's body.  For a TAV
   exceedance the access may live in any body the arrival reaches, so
   scan the observed DAVs for a defining site that saw the field at that
   mode — that is the provenance chain's last link. *)
let dav_pos ex (c, m) f mode =
  match Extraction.first_field_pos ex c m f mode with
  | p -> p
  | exception Invalid_argument _ -> None

let witness_note rec_kind recorder site f =
  let w =
    match rec_kind with
    | `Dav -> Recorder.dav_witness recorder site f
    | `Tav -> Recorder.tav_witness recorder site f
  in
  match w with
  | None -> []
  | Some w ->
      [
        {
          Diag.n_msg =
            Format.asprintf "witnessed by transaction %d on oid %a at mode %s" w.Recorder.w_txn
              Oid.pp w.Recorder.w_oid (mode_name w.Recorder.w_mode);
          n_pos = None;
        };
      ]

let check ~an ?lookup recorder =
  let lookup = match lookup with Some l -> l | None -> of_analysis an in
  let ex = Analysis.extraction an in
  let diags = ref [] in
  let checks = ref 0 in
  let obs_dav = Recorder.observed_dav recorder in
  let obs_tav = Recorder.observed_tav recorder in
  (* SAN001: direct accesses against the defining site's DAV. *)
  List.iter
    (fun (site, av) ->
      let stat = lookup.lk_dav site in
      List.iter
        (fun (f, om) ->
          incr checks;
          let sm = match stat with Some v -> Access_vector.get v f | None -> Mode.Null in
          if not (Mode.leq om sm) then begin
            let c, m = site in
            let msg =
              Format.asprintf "observed %s of %a in %a.%a, but its DAV declares %s" (mode_name om)
                FN.pp f CN.pp c MN.pp m (mode_name sm)
            in
            let notes = witness_note `Dav recorder site f in
            let notes =
              if stat = None then
                { Diag.n_msg = "site missing from the analysis entirely"; n_pos = None } :: notes
              else notes
            in
            diags := Diag.make ?pos:(dav_pos ex site f om) ~notes Diag.San001 site msg :: !diags
          end)
        (Access_vector.to_list av))
    obs_dav;
  (* SAN002: arrival-scoped accesses against the entry's TAV. *)
  List.iter
    (fun (site, av) ->
      let stat = lookup.lk_tav site in
      List.iter
        (fun (f, om) ->
          incr checks;
          let sm = match stat with Some v -> Access_vector.get v f | None -> Mode.Null in
          if not (Mode.leq om sm) then begin
            let c, m = site in
            let msg =
              Format.asprintf
                "accesses arriving at %a.%a observed %s of %a, but its TAV declares %s" CN.pp c
                MN.pp m (mode_name om) FN.pp f (mode_name sm)
            in
            (* chain: arrival entry -> the defining site whose body did it *)
            let culprit =
              List.find_opt
                (fun (_, dav) -> Mode.leq om (Access_vector.get dav f))
                (Recorder.observed_dav recorder)
            in
            let chain =
              match culprit with
              | None -> []
              | Some (((dc, dm) as dsite), _) ->
                  [
                    {
                      Diag.n_msg =
                        Format.asprintf "the %s is performed by %a.%a" (mode_name om) CN.pp dc
                          MN.pp dm;
                      n_pos = dav_pos ex dsite f om;
                    };
                  ]
            in
            let notes = chain @ witness_note `Tav recorder site f in
            let notes =
              if stat = None then
                { Diag.n_msg = "site missing from the analysis entirely"; n_pos = None } :: notes
              else notes
            in
            let pos = match culprit with Some (d, _) -> dav_pos ex d f om | None -> None in
            diags := Diag.make ?pos ~notes Diag.San002 site msg :: !diags
          end)
        (Access_vector.to_list av))
    obs_tav;
  {
    r_diags = List.sort Diag.render_compare !diags;
    r_dav_sites = List.length obs_dav;
    r_tav_sites = List.length obs_tav;
    r_checks = !checks;
  }

let ok r = r.r_diags = []
