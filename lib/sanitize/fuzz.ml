open Tavcc_model
open Tavcc_core
open Tavcc_lang
module CN = Name.Class
module FN = Name.Field
module MN = Name.Method
module Rng = Tavcc_sim.Rng

type cfg = { max_classes : int; max_fields : int; max_methods : int; max_stmts : int }

let default_cfg = { max_classes = 4; max_fields = 3; max_methods = 5; max_stmts = 4 }

(* {1 Generation} *)

(* Structural skeleton decided in a first pass, so bodies (second pass)
   can send to methods of any class, including later ones. *)
type skel = {
  sk_name : CN.t;
  sk_parent : int option;  (* index into the skeleton array *)
  sk_own_fields : FN.t list;
  sk_fields : FN.t list;  (* inherited @ own *)
  sk_defined : bool array;  (* method j defined here *)
  sk_avail : bool array;  (* method j understood (own or inherited) *)
}

let lit n = Ast.Lit (Value.Vint n)
let ident x = Ast.Ident x
let param = "p1"

let send ?prefix ?(args = [ ident param ]) name recv =
  Ast.Send_stmt
    { Ast.msg_prefix = prefix; msg_name = name; msg_args = args; msg_recv = recv; msg_pos = None }

let gen_skeletons rng cfg =
  let n_cls = 1 + Rng.int rng cfg.max_classes in
  let n_meths = 2 + Rng.int rng (max 1 (cfg.max_methods - 1)) in
  let skels = Array.make n_cls None in
  for i = 0 to n_cls - 1 do
    let parent = if i > 0 && Rng.chance rng 0.5 then Some (Rng.int rng i) else None in
    let parent_sk = Option.map (fun p -> Option.get skels.(p)) parent in
    let own_fields =
      List.init
        (1 + Rng.int rng cfg.max_fields)
        (fun j -> FN.of_string (Printf.sprintf "f%d_%d" i j))
    in
    let inherited = match parent_sk with Some p -> p.sk_fields | None -> [] in
    let defined = Array.make n_meths false in
    let avail = Array.make n_meths false in
    for j = 0 to n_meths - 1 do
      let inherited_avail =
        match parent_sk with Some p -> p.sk_avail.(j) | None -> false
      in
      (* root classes always define m0, so every class understands it *)
      let def = (j = 0 && parent = None) || Rng.chance rng 0.6 in
      defined.(j) <- def;
      avail.(j) <- def || inherited_avail
    done;
    skels.(i) <-
      Some
        {
          sk_name = CN.of_string (Printf.sprintf "k%d" i);
          sk_parent = parent;
          sk_own_fields = own_fields;
          sk_fields = inherited @ own_fields;
          sk_defined = defined;
          sk_avail = avail;
        }
  done;
  (Array.map Option.get skels, n_meths)

(* Strict ancestors of class [i], nearest first. *)
let ancestors skels i =
  let rec up acc = function
    | None -> List.rev acc
    | Some p -> up (p :: acc) skels.(p).sk_parent
  in
  up [] skels.(i).sk_parent

(* The driver calls every entry with each argument in [sweep_lo, sweep_hi].
   Bodies are generated so that the sweep provably executes every
   statement: branch constants split the interval of parameter values
   that can reach the branch, and self-sends only appear where the full
   interval still flows (a self-send under a narrowed branch would run
   the callee on a slice of the sweep only, leaving the caller's
   observed TAV short of the static one). *)
let sweep_lo = -2
let sweep_hi = 3

let gen_body rng cfg skels i j =
  let sk = skels.(i) in
  let fresh =
    let ctr = ref 0 in
    fun prefix ->
      incr ctr;
      Printf.sprintf "%s%d" prefix !ctr
  in
  let pick_field () = FN.to_string (Rng.pick rng sk.sk_fields) in
  (* methods of strictly smaller index available on class [ci] *)
  let smaller_avail ci =
    List.filter (fun k -> skels.(ci).sk_avail.(k)) (List.init j (fun k -> k))
  in
  let meth k = MN.of_string (Printf.sprintf "m%d" k) in
  (* [lo, hi] = inclusive interval of parameter values reaching this
     generation point; starts as the full sweep. *)
  let rec gen_stmts ~depth ~lo ~hi n =
    if n <= 0 then []
    else
      let rest ?(used = 1) () = gen_stmts ~depth ~lo ~hi (n - used) in
      match Rng.int rng 10 with
      | 0 | 1 ->
          (* self-increment write — the escrow-candidate shape *)
          let f = pick_field () in
          let delta = if Rng.bool rng then ident param else lit 1 in
          let op = if Rng.chance rng 0.8 then Ast.Add else Ast.Sub in
          Ast.Assign (f, Ast.Binop (op, ident f, delta)) :: rest ()
      | 2 ->
          let f = pick_field () in
          Ast.Assign (f, Ast.Binop (Ast.Mul, ident param, lit 2)) :: rest ()
      | 3 | 4 ->
          let f = pick_field () in
          Ast.Var (fresh "v", Ast.Binop (Ast.Add, ident f, ident param)) :: rest ()
      | 5 when depth > 0 && lo < hi ->
          (* split the feasible interval so both branches are reachable
             under the sweep — nested conditions on the same invariant
             parameter would otherwise produce dead branches *)
          let c = lo + Rng.int rng (hi - lo) in
          let t = gen_stmts ~depth:(depth - 1) ~lo:(c + 1) ~hi (1 + Rng.int rng 2) in
          let e = gen_stmts ~depth:(depth - 1) ~lo ~hi:c (1 + Rng.int rng 2) in
          Ast.If (Ast.Binop (Ast.Gt, ident param, lit c), t, e) :: rest ()
      | 6 when depth > 0 ->
          let w = fresh "w" in
          let body = gen_stmts ~depth:(depth - 1) ~lo ~hi (1 + Rng.int rng 2) in
          Ast.Var (w, lit (1 + Rng.int rng 2))
          :: Ast.While
               ( Ast.Binop (Ast.Gt, ident w, lit 0),
                 body @ [ Ast.Assign (w, Ast.Binop (Ast.Sub, ident w, lit 1)) ] )
          :: rest ()
      | 7 when lo = sweep_lo && hi = sweep_hi -> (
          (* self-send: plain, or prefixed through an ancestor.  Full
             interval only: the callee's accesses count toward this
             entry's TAV, and saturating them needs the whole sweep. *)
          let prefixed =
            List.concat_map
              (fun a ->
                List.filter_map
                  (fun k -> if skels.(a).sk_avail.(k) then Some (Some a, k) else None)
                  (List.init j (fun k -> k)))
              (ancestors skels i)
          in
          let plain = List.map (fun k -> (None, k)) (smaller_avail i) in
          match plain @ prefixed with
          | [] -> rest ~used:0 ()
          | choices ->
              let anc, k = Rng.pick rng choices in
              let prefix = Option.map (fun a -> skels.(a).sk_name) anc in
              send ?prefix (meth k) Ast.Rself :: rest ())
      | 8 -> (
          (* cross-class send to a fresh instance: statically known class *)
          let choices =
            List.concat_map
              (fun ci -> List.map (fun k -> (ci, k)) (smaller_avail ci))
              (List.init (Array.length skels) (fun ci -> ci))
          in
          match choices with
          | [] -> rest ~used:0 ()
          | _ ->
              let ci, k = Rng.pick rng choices in
              send (meth k) (Ast.Rexpr (Ast.New skels.(ci).sk_name)) :: rest ())
      | _ -> (
          (* dynamic send: the receiver class is only known at run time *)
          let choices =
            List.concat_map
              (fun ci -> List.map (fun k -> (ci, k)) (smaller_avail ci))
              (List.init (Array.length skels) (fun ci -> ci))
          in
          match choices with
          | [] -> rest ~used:0 ()
          | _ ->
              let ci, k = Rng.pick rng choices in
              let r = fresh "r" in
              Ast.Var (r, Ast.New skels.(ci).sk_name)
              :: send (meth k) (Ast.Rexpr (ident r))
              :: rest ())
  in
  let body = gen_stmts ~depth:2 ~lo:sweep_lo ~hi:sweep_hi (1 + Rng.int rng cfg.max_stmts) in
  (* A [return] anywhere else would make trailing statements dead code:
     statically counted, never executed — defeating the saturation the
     mutation harness relies on.  Last position only. *)
  if Rng.chance rng 0.15 then body @ [ Ast.Return (ident (pick_field ())) ] else body

let gen_decls ?(cfg = default_cfg) rng =
  let skels, n_meths = gen_skeletons rng cfg in
  Array.to_list
    (Array.mapi
       (fun i sk ->
         let methods =
           List.filter_map
             (fun j ->
               if sk.sk_defined.(j) then
                 Some
                   {
                     Schema.m_name = MN.of_string (Printf.sprintf "m%d" j);
                     m_params = [ param ];
                     m_body = gen_body rng cfg skels i j;
                   }
               else None)
             (List.init n_meths (fun j -> j))
         in
         {
           Schema.c_name = sk.sk_name;
           c_parents =
             (match sk.sk_parent with Some p -> [ skels.(p).sk_name ] | None -> []);
           c_fields = List.map (fun f -> (f, Value.Tint)) sk.sk_own_fields;
           c_methods = methods;
         })
       skels)

let source = Pretty.decls_to_string

(* {1 Driving and checking} *)

type run = {
  run_src : string;
  run_an : Analysis.t;
  run_recorder : Recorder.t;
  run_result : Conform.result;
  run_errors : (string * string) list;
}

type verdict = Sound | Unsound of Tavcc_analyze.Diag.t list | Broken of string

let sweep = List.init (sweep_hi - sweep_lo + 1) (fun k -> sweep_lo + k)

let drive an recorder =
  let schema = Analysis.schema an in
  let store = Store.create schema in
  let txn = ref 0 in
  let errors = ref [] in
  List.iter
    (fun c ->
      let o = Store.new_instance store c in
      List.iter
        (fun m ->
          let arity =
            match Schema.resolve schema c m with
            | Some (_, md) -> List.length md.Schema.m_params
            | None -> 0
          in
          List.iter
            (fun v ->
              incr txn;
              let hooks = Recorder.hooks recorder ~txn:!txn in
              let args = List.init arity (fun _ -> Value.Vint v) in
              match Interp.call ~hooks ~max_steps:500_000 store o m args with
              | _ -> ()
              | exception Interp.Runtime_error msg ->
                  errors :=
                    (Format.asprintf "%a.%a(%d)" CN.pp c MN.pp m v, msg) :: !errors)
            sweep)
        (Schema.methods schema c))
    (Schema.classes schema);
  List.rev !errors

let run_source src =
  match
    let decls = Parser.parse_decls src in
    match Schema.build decls with
    | Error e -> Error (Format.asprintf "%a" Schema.pp_error e)
    | Ok schema -> Ok (Analysis.compile schema)
  with
  | exception e -> Error (Printexc.to_string e)
  | Error e -> Error e
  | Ok an ->
      let recorder = Recorder.create () in
      let errors = drive an recorder in
      let result = Conform.check ~an recorder in
      Ok { run_src = src; run_an = an; run_recorder = recorder; run_result = result; run_errors = errors }

let verdict_of run =
  match run.run_result.Conform.r_diags with
  | _ :: _ as diags -> Unsound diags
  | [] -> (
      match run.run_errors with
      | (entry, msg) :: _ -> Broken (Printf.sprintf "%s: %s" entry msg)
      | [] -> Sound)

let check_source src =
  match run_source src with Error e -> Broken e | Ok run -> verdict_of run

let check_decls decls = check_source (source decls)

(* {1 Shrinking} *)

let rec strip = function Ast.At (_, s) -> strip s | s -> s

let splice body i sub = List.concat (List.mapi (fun k s -> if k = i then sub else [ s ]) body)

let body_variants body =
  let drops = List.mapi (fun i _ -> List.filteri (fun k _ -> k <> i) body) body in
  let inlines =
    List.concat
      (List.mapi
         (fun i s ->
           match strip s with
           | Ast.If (_, t, e) -> [ splice body i t; splice body i e ]
           | Ast.While (_, b) -> [ splice body i b ]
           | _ -> [])
         body)
  in
  drops @ inlines

let decl_variants decls =
  let replace i x = List.mapi (fun k d -> if k = i then x else d) decls in
  let drop_class = List.mapi (fun i _ -> List.filteri (fun k _ -> k <> i) decls) decls in
  let per_class f = List.concat (List.mapi f decls) in
  let drop_method =
    per_class (fun i d ->
        List.mapi
          (fun k _ ->
            replace i { d with Schema.c_methods = List.filteri (fun k' _ -> k' <> k) d.Schema.c_methods })
          d.Schema.c_methods)
  in
  let drop_field =
    per_class (fun i d ->
        List.mapi
          (fun k _ ->
            replace i { d with Schema.c_fields = List.filteri (fun k' _ -> k' <> k) d.Schema.c_fields })
          d.Schema.c_fields)
  in
  let shrink_body =
    per_class (fun i d ->
        List.concat
          (List.mapi
             (fun k m ->
               List.map
                 (fun b ->
                   replace i
                     {
                       d with
                       Schema.c_methods =
                         List.mapi
                           (fun k' m' -> if k' = k then { m' with Schema.m_body = b } else m')
                           d.Schema.c_methods;
                     })
                 (body_variants m.Schema.m_body))
             d.Schema.c_methods))
  in
  drop_class @ drop_method @ drop_field @ shrink_body

let same_kind reference v =
  match (reference, v) with
  | Unsound _, Unsound _ -> true
  | Broken _, Broken _ -> true
  | Sound, Sound -> true
  | _ -> false

let minimize ?(max_steps = 400) src =
  let reference = check_source src in
  match reference with
  | Sound -> src
  | _ ->
      let budget = ref max_steps in
      let fails decls =
        if !budget <= 0 then false
        else begin
          decr budget;
          same_kind reference (check_decls decls)
        end
      in
      let rec go decls =
        match List.find_opt fails (decl_variants decls) with
        | Some smaller when !budget > 0 -> go smaller
        | _ -> decls
      in
      let decls = Parser.parse_decls src in
      source (go decls)

(* {1 Seeded mutations} *)

type mutation = {
  mu_kind : [ `Dav | `Tav ];
  mu_site : Site.t;
  mu_field : FN.t;
  mu_from : Mode.t;
  mu_to : Mode.t;
}

let pp_mutation ppf mu =
  let kind = match mu.mu_kind with `Dav -> "DAV" | `Tav -> "TAV" in
  Format.fprintf ppf "%s %a: %a %s -> %s" kind Site.pp mu.mu_site FN.pp mu.mu_field
    (Mode.to_string mu.mu_from) (Mode.to_string mu.mu_to)

let gen_mutation rng run =
  let lookup = Conform.of_analysis run.run_an in
  let pool kind lk sites =
    List.concat_map
      (fun (site, _) ->
        match lk site with
        | None -> []
        | Some av -> List.map (fun (f, m) -> (kind, site, f, m)) (Access_vector.to_list av))
      sites
  in
  let entries =
    pool `Dav lookup.Conform.lk_dav (Recorder.observed_dav run.run_recorder)
    @ pool `Tav lookup.Conform.lk_tav (Recorder.observed_tav run.run_recorder)
  in
  match entries with
  | [] -> None
  | _ ->
      let kind, site, f, m = Rng.pick rng entries in
      let to_ =
        match m with
        | Mode.Write -> if Rng.bool rng then Mode.Read else Mode.Null
        | Mode.Read | Mode.Null -> Mode.Null
      in
      Some { mu_kind = kind; mu_site = site; mu_field = f; mu_from = m; mu_to = to_ }

let mutated_lookup an mu =
  let base = Conform.of_analysis an in
  let tweak lk site =
    match lk site with
    | Some av when Site.equal site mu.mu_site ->
        Some (Access_vector.set av mu.mu_field mu.mu_to)
    | r -> r
  in
  match mu.mu_kind with
  | `Dav -> { base with Conform.lk_dav = tweak base.Conform.lk_dav }
  | `Tav -> { base with Conform.lk_tav = tweak base.Conform.lk_tav }

let mutation_detected run mu =
  let lookup = mutated_lookup run.run_an mu in
  let res = Conform.check ~an:run.run_an ~lookup run.run_recorder in
  res.Conform.r_diags <> []
