(** Dynamic access-vector recording.

    The recorder hangs off {!Tavcc_cc.Exec.probe} (or plain
    {!Tavcc_lang.Interp.hooks} when no scheme is involved) and
    accumulates, while transactions execute, the runtime counterparts of
    the analyzer's two vectors:

    - the {b observed DAV}: per {e defining site}, the join of the modes
      of the field accesses performed directly by that body — nested
      sends excluded, exactly as definition 6 counts them;
    - the {b observed TAV}: per {e arrival} — a message reaching an
      instance from outside it — the join of every access to that
      instance within the arrival's dynamic extent, keyed by the
      instance's proper class and the arriving method, exactly the scope
      definition 10's transitive vector must cover.

    A later self-send does not open a new arrival; a cross-object send
    does (at the other object), and so does a message that leaves the
    object and comes back ([A → B → A] re-enters [A] as a fresh
    arrival).  Accesses performed by aborted attempts are kept: a real
    execution reached them, so they are valid witnesses against the
    static vectors.

    One recorder per domain — it is not thread-safe.  In the multicore
    engine give each worker its own recorder and {!merge_into} a fresh
    one afterwards.  Within a domain, any number of cooperatively
    interleaved transactions may share it: state is tracked per [txn]. *)

open Tavcc_model
open Tavcc_core

type witness = {
  w_txn : int;
  w_oid : Oid.t;
  w_mode : Mode.t;  (** the widest mode this witness observed on the field *)
}

type t

val create : unit -> t

val probe : t -> txn:int -> Tavcc_cc.Exec.probe
(** The probe recording transaction [txn]'s accesses.  Versioned (MVCC)
    accesses are recorded like any other — access conformance is
    independent of how the access was synchronised. *)

val hooks : t -> txn:int -> Tavcc_lang.Interp.hooks
(** {!probe} repackaged as bare interpreter hooks, for driving method
    code under the recorder without any concurrency-control scheme (the
    fuzzer's differential oracle does this). *)

val observed_dav : t -> (Site.t * Access_vector.t) list
(** Per defining site, sorted. *)

val observed_tav : t -> (Site.t * Access_vector.t) list
(** Per arrival site [(proper class, method)], sorted. *)

val dav_witness : t -> Site.t -> Name.Field.t -> witness option
val tav_witness : t -> Site.t -> Name.Field.t -> witness option
(** The access that established the field's recorded mode (the first one
    to attain it). *)

val frames : t -> int
(** Method frames closed so far. *)

val arrivals : t -> int
(** Arrivals closed so far. *)

val merge_into : dst:t -> t -> unit
(** Joins the source's aggregated vectors (and counters) into [dst];
    witnesses of newly attained modes are carried over.  The source's
    in-flight per-transaction state is ignored — merge quiescent
    recorders only. *)
