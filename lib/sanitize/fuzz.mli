(** Schema/workload fuzzing: a differential oracle for the analyzer.

    The fuzzer generates random ODML schemas — inheritance chains,
    overrides, plain and prefixed self-sends, statically-typed and
    dynamic cross-class sends, branches and loops — drives {e every}
    (class, method) entry over an argument sweep under the
    {!Recorder}, and asserts {!Conform}ance of the observed access
    vectors against the analyzer's.  Any SAN001/SAN002 finding on an
    unmodified analyzer is an analyzer soundness bug; the failing schema
    is {!minimize}d to a minimal reproducer printable as replayable
    ODML source.

    Generated programs terminate by construction: every send (self,
    prefixed, cross or dynamic) targets a method of strictly smaller
    index in the method-name pool, and loops count down a constant local
    counter.  Branch conditions compare the parameter against constants
    that split the interval of values able to reach the branch (so no
    branch is dead under the driver's argument sweep), and self-sends
    only appear where the full interval still flows — together these
    make the observed vectors saturate the static ones, which is what
    makes the seeded {!mutation} harness's detection rate a meaningful
    measure of the checker's false negatives.

    Everything is deterministic from the {!Tavcc_sim.Rng} seed. *)

open Tavcc_model
open Tavcc_core
open Tavcc_lang

type cfg = {
  max_classes : int;
  max_fields : int;  (** own fields per class *)
  max_methods : int;  (** size of the shared method-name pool *)
  max_stmts : int;  (** statements per method body *)
}

val default_cfg : cfg

val gen_decls : ?cfg:cfg -> Tavcc_sim.Rng.t -> Ast.body Schema.class_decl list
val source : Ast.body Schema.class_decl list -> string

(** A driven run of one schema under the recorder. *)
type run = {
  run_src : string;
  run_an : Analysis.t;
  run_recorder : Recorder.t;
  run_result : Conform.result;
  run_errors : (string * string) list;  (** (entry, message) runtime errors while driving *)
}

type verdict =
  | Sound
  | Unsound of Tavcc_analyze.Diag.t list  (** observed ⊑ static violated *)
  | Broken of string  (** schema did not parse/build/compile, or driving crashed *)

val run_source : string -> (run, string) result
(** Parses, compiles, drives every (class, method) over the argument
    sweep, checks conformance.  [Error] is a parse/build/compile
    failure. *)

val verdict_of : run -> verdict
val check_source : string -> verdict
val check_decls : Ast.body Schema.class_decl list -> verdict
(** [check_decls] round-trips through the pretty-printer and parser
    first, so positions (and the replay path) match the printed
    source. *)

val minimize : ?max_steps:int -> string -> string
(** Greedily shrinks a failing schema — dropping classes, methods,
    fields and statements, inlining branches and loop bodies — while the
    verdict kind is preserved; returns the minimal source.  [max_steps]
    (default 400) bounds candidate evaluations. *)

(** {1 Seeded-mutation harness} *)

type mutation = {
  mu_kind : [ `Dav | `Tav ];
  mu_site : Site.t;
  mu_field : Name.Field.t;
  mu_from : Mode.t;
  mu_to : Mode.t;  (** strictly below [mu_from] *)
}

val pp_mutation : Format.formatter -> mutation -> unit

val gen_mutation : Tavcc_sim.Rng.t -> run -> mutation option
(** Weakens one static entry among the sites the run exercised ([None]
    when nothing was observed).  Restricting the pool to exercised sites
    makes the detection rate measure the {e checker}, not the driver's
    coverage. *)

val mutated_lookup : Analysis.t -> mutation -> Conform.lookup
val mutation_detected : run -> mutation -> bool
(** Re-checks the run's observations against the weakened vectors; a
    sound sanitizer must report at least one diagnostic. *)
