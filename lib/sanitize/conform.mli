(** Observed-versus-static access conformance.

    The analyzer is sound when everything the runtime actually does is
    within what the compiler declared: every defining site's observed
    direct accesses within its DAV (definition 6), and every arrival's
    observed accesses within the entry's TAV (definition 10).  [check]
    asserts both inclusions field by field and reports each failure as a
    severity-ranked {!Tavcc_analyze.Diag} with provenance: the witnessing
    transaction and instance, the declared versus observed modes, and the
    position of the offending statement recovered from the extraction's
    access tree.

    The static vectors are consulted through a {!lookup} so the mutation
    harness can deliberately weaken one entry and assert the checker
    notices; {!of_analysis} is the honest lookup. *)

open Tavcc_core

type lookup = {
  lk_dav : Site.t -> Access_vector.t option;
  lk_tav : Site.t -> Access_vector.t option;
}

val of_analysis : Analysis.t -> lookup
(** [None] for sites the analysis does not know — itself reported as a
    violation when observed. *)

type result = {
  r_diags : Tavcc_analyze.Diag.t list;  (** sorted in rendering order *)
  r_dav_sites : int;  (** defining sites with observations *)
  r_tav_sites : int;  (** arrival sites with observations *)
  r_checks : int;  (** field inclusions tested *)
}

val check : an:Analysis.t -> ?lookup:lookup -> Recorder.t -> result
(** [an] supplies source positions and field provenance; [lookup]
    (default [of_analysis an]) supplies the vectors being verified.
    SAN001 = observed DAV exceedance, SAN002 = observed TAV
    exceedance. *)

val ok : result -> bool
(** No diagnostics. *)
