open Tavcc_model
open Tavcc_core
module MN = Name.Method

type witness = { w_txn : int; w_oid : Oid.t; w_mode : Mode.t }

type ent = { e_f : Name.Field.t; mutable e_w : bool (* covers Write *) }

(* One aggregated vector (DAV or TAV) plus, per field, the access that
   first attained the field's current mode.  [a_ents] mirrors the
   non-[Null] entries of [a_av]: a method touches a handful of fields,
   so the hot path is a short scan — pointer equality first (field
   names come off AST nodes, so re-executions of a statement present
   the same string), then [String.equal] on a short name.  Both are
   cheaper than hashing, and neither allocates. *)
type acc = {
  mutable a_av : Access_vector.t;
  a_wit : (Name.Field.t, witness) Hashtbl.t;
  mutable a_ents : ent list;
}

(* A method frame records into its defining site's DAV accumulator; an
   arrival records into its (proper class, method) TAV accumulator.  Both
   accumulators are resolved once, when the frame is pushed — the
   per-access path never touches the site tables. *)
type frame = { fr_acc : acc; fr_opened : bool (* this frame opened an arrival *) }

type txn_state = {
  mutable ts_frames : frame list;  (* innermost first *)
  mutable ts_arrivals : acc list;  (* innermost first *)
  (* Set by [p_top_send], consumed by the next [p_enter]: the handshake
     that tells an arrival's entry apart from a self-send's. *)
  mutable ts_pending : (Oid.t * MN.t) option;
  (* One-entry saturation cache: the last field both current
     accumulators (frame head and arrival head) cover at [Write] —
     which also covers reads.  Method bodies hammer the same few
     fields, so this turns the steady state into one string compare.
     Cleared whenever a frame is pushed or popped, so the heads cannot
     change while an entry is live. *)
  mutable ts_last : Name.Field.t;
}

let no_field = Name.Field.of_string ""

module Site_tbl = Hashtbl.Make (struct
  type t = Site.t

  let equal = Site.equal
  let hash s = Hashtbl.hash s
end)

type t = {
  davs : acc Site_tbl.t;
  tavs : acc Site_tbl.t;
  txns : (int, txn_state) Hashtbl.t;
  mutable frames : int;
  mutable arrivals : int;
}

let create () =
  { davs = Site_tbl.create 64; tavs = Site_tbl.create 64; txns = Hashtbl.create 16; frames = 0; arrivals = 0 }

let state t txn =
  match Hashtbl.find_opt t.txns txn with
  | Some ts -> ts
  | None ->
      let ts =
        { ts_frames = []; ts_arrivals = []; ts_pending = None; ts_last = no_field }
      in
      Hashtbl.add t.txns txn ts;
      ts

let acc_of tbl site =
  match Site_tbl.find_opt tbl site with
  | Some a -> a
  | None ->
      let a =
        { a_av = Access_vector.empty; a_wit = Hashtbl.create 4; a_ents = [] }
      in
      Site_tbl.add tbl site a;
      a

(* A present entry covers reads by construction ([a_ents]'s domain is
   exactly the non-[Null] entries of [a_av]); [e_w] says whether [Write]
   is covered too.  The miss paths keep [a_av], the witness and the
   entry list in step. *)
let read_miss a ~txn ~oid f =
  a.a_av <- Access_vector.add a.a_av f Mode.Read;
  Hashtbl.replace a.a_wit f { w_txn = txn; w_oid = oid; w_mode = Mode.Read };
  a.a_ents <- { e_f = f; e_w = false } :: a.a_ents

let widen a ~txn ~oid f e =
  a.a_av <- Access_vector.add a.a_av f Mode.Write;
  Hashtbl.replace a.a_wit f { w_txn = txn; w_oid = oid; w_mode = Mode.Write };
  e.e_w <- true

let write_miss a ~txn ~oid f =
  a.a_av <- Access_vector.add a.a_av f Mode.Write;
  Hashtbl.replace a.a_wit f { w_txn = txn; w_oid = oid; w_mode = Mode.Write };
  a.a_ents <- { e_f = f; e_w = true } :: a.a_ents

let rec mem_ent f = function
  | [] -> false
  | e :: tl -> e.e_f == f || Name.Field.equal e.e_f f || mem_ent f tl

let rec ent_of f = function
  | [] -> raise_notrace Not_found
  | e :: tl -> if e.e_f == f || Name.Field.equal e.e_f f then e else ent_of f tl

let read_acc a ~txn ~oid f =
  if not (mem_ent f a.a_ents) then read_miss a ~txn ~oid f

let write_acc a ~txn ~oid f =
  match ent_of f a.a_ents with
  | e -> if not e.e_w then widen a ~txn ~oid f e
  | exception Not_found -> write_miss a ~txn ~oid f

let record tbl site ~txn ~oid f m =
  let a = acc_of tbl site in
  match m with
  | Mode.Null -> ()
  | Mode.Read -> read_acc a ~txn ~oid f
  | Mode.Write -> write_acc a ~txn ~oid f

let probe t ~txn =
  let ts = state t txn in
  let read oid f =
    if not (ts.ts_last == f || Name.Field.equal ts.ts_last f) then begin
      (match ts.ts_frames with
      | fr :: _ -> read_acc fr.fr_acc ~txn ~oid f
      | [] -> ());
      match ts.ts_arrivals with
      | a :: _ -> read_acc a ~txn ~oid f
      | [] -> ()
    end
  in
  let write oid f =
    if not (ts.ts_last == f || Name.Field.equal ts.ts_last f) then begin
      (match ts.ts_frames with
      | fr :: _ -> write_acc fr.fr_acc ~txn ~oid f
      | [] -> ());
      (match ts.ts_arrivals with
      | a :: _ -> write_acc a ~txn ~oid f
      | [] -> ());
      (* both live accumulators now cover [f] at [Write] *)
      ts.ts_last <- f
    end
  in
  let p_top_send oid _cls m = ts.ts_pending <- Some (oid, m) in
  let p_self_send _oid _cls _m = ts.ts_pending <- None in
  let p_enter self cls ~resolve_at:_ ~defining m =
    let opened =
      match ts.ts_pending with
      | Some (o, m') when Oid.equal o self && MN.equal m' m ->
          ts.ts_arrivals <- acc_of t.tavs (cls, m) :: ts.ts_arrivals;
          true
      | _ -> false
    in
    ts.ts_pending <- None;
    ts.ts_last <- no_field;
    ts.ts_frames <- { fr_acc = acc_of t.davs (defining, m); fr_opened = opened } :: ts.ts_frames
  in
  let p_exit _self _cls _m =
    match ts.ts_frames with
    | [] -> ()
    | fr :: rest ->
        ts.ts_last <- no_field;
        ts.ts_frames <- rest;
        t.frames <- t.frames + 1;
        if fr.fr_opened then begin
          t.arrivals <- t.arrivals + 1;
          match ts.ts_arrivals with [] -> () | _ :: ars -> ts.ts_arrivals <- ars
        end
  in
  {
    Tavcc_cc.Exec.p_top_send;
    p_self_send;
    p_enter;
    p_exit;
    p_read = (fun oid _cls f ~versioned:_ -> read oid f);
    p_write = (fun oid _cls f ~versioned:_ -> write oid f);
  }

let hooks t ~txn =
  let p = probe t ~txn in
  {
    Tavcc_lang.Interp.no_hooks with
    Tavcc_lang.Interp.h_top_send = p.Tavcc_cc.Exec.p_top_send;
    h_self_send = p.Tavcc_cc.Exec.p_self_send;
    h_enter = p.Tavcc_cc.Exec.p_enter;
    h_exit = p.Tavcc_cc.Exec.p_exit;
    h_read = (fun oid cls f -> p.Tavcc_cc.Exec.p_read oid cls f ~versioned:false);
    h_write = (fun oid cls f ~old:_ _ -> p.Tavcc_cc.Exec.p_write oid cls f ~versioned:false);
  }

let sorted tbl =
  Site_tbl.fold (fun site a l -> (site, a.a_av) :: l) tbl []
  |> List.sort (fun (s, _) (s', _) -> Site.compare s s')

let observed_dav t = sorted t.davs
let observed_tav t = sorted t.tavs

let witness tbl site f =
  match Site_tbl.find_opt tbl site with
  | None -> None
  | Some a -> Hashtbl.find_opt a.a_wit f

let dav_witness t = witness t.davs
let tav_witness t = witness t.tavs
let frames t = t.frames
let arrivals t = t.arrivals

let merge_into ~dst src =
  let merge_tbl dst_tbl src_tbl =
    Site_tbl.iter
      (fun site a ->
        List.iter
          (fun (f, m) ->
            (* every non-[Null] entry was set through [record], so a
               witness always exists *)
            match Hashtbl.find_opt a.a_wit f with
            | Some w -> record dst_tbl site ~txn:w.w_txn ~oid:w.w_oid f m
            | None -> ())
          (Access_vector.to_list a.a_av))
      src_tbl
  in
  merge_tbl dst.davs src.davs;
  merge_tbl dst.tavs src.tavs;
  dst.frames <- dst.frames + src.frames;
  dst.arrivals <- dst.arrivals + src.arrivals
