open Tavcc_model
open Tavcc_core
open Tavcc_lock
module CN = Name.Class
module FN = Name.Field
module MN = Name.Method

type violation = {
  v_txn : int;
  v_oid : Oid.t;
  v_cls : CN.t;
  v_field : FN.t;
  v_mode : Mode.t;
  v_site : Site.t;
  v_scheme : string;
}

let pp_violation ppf v =
  let c, m = v.v_site in
  Format.fprintf ppf "txn %d: %s of %a.%a on oid %a (class %a) in %a.%a held no dominating lock"
    v.v_txn
    (String.lowercase_ascii (Mode.to_string v.v_mode))
    CN.pp v.v_cls FN.pp v.v_field Oid.pp v.v_oid CN.pp v.v_cls CN.pp c MN.pp m

(* The lock vocabularies the compared schemes draw their modes from. *)
type vocab =
  | V_tav  (* per-class access modes; TAVs decide what a mode grants *)
  | V_rw  (* read/write instance locks + Gray hierarchical class locks *)
  | V_field  (* per-field read/write locks *)
  | V_relational  (* per-fragment read/write + Gray locks on relations *)

let vocab_of = function
  | "tav" | "tav-pre" | "mvcc-tav" -> Some V_tav
  | "rw-msg" | "rw-top" | "rw-impl" -> Some V_rw
  | "field-rt" -> Some V_field
  | "relational" -> Some V_relational
  | _ -> None

let supported s = vocab_of s <> None

type t = {
  mt_scheme : string;
  mt_vocab : vocab;
  mt_an : Analysis.t;
  mt_gm : Tavcc_cc.Global_modes.t option;  (* [Some] for [V_tav] *)
  mt_ring : violation Tavcc_obs.Ring.t;
  mt_sites : (int, Site.t list ref) Hashtbl.t;  (* per-txn frame sites *)
  mutable mt_checked : int;
}

let create ?(capacity = 1024) ~scheme an =
  match vocab_of scheme with
  | None -> invalid_arg (Printf.sprintf "Monitor.create: unsupported scheme %S" scheme)
  | Some v ->
      {
        mt_scheme = scheme;
        mt_vocab = v;
        mt_an = an;
        mt_gm = (if v = V_tav then Some (Tavcc_cc.Global_modes.build an) else None);
        mt_ring = Tavcc_obs.Ring.create capacity;
        mt_sites = Hashtbl.create 16;
        mt_checked = 0;
      }

let scheme t = t.mt_scheme

(* A TAV mode [g] grants field [f] at mode [m] when the transitive vector
   of the (class, method) it encodes dominates the access. *)
let tav_grants t g f m =
  let gm = Option.get t.mt_gm in
  let c = Tavcc_cc.Global_modes.class_of gm g in
  let mth = Tavcc_cc.Global_modes.method_of gm g in
  match Analysis.tav t.mt_an c mth with
  | tav -> Mode.leq m (Access_vector.get tav f)
  | exception Invalid_argument _ -> false

let rw_grants ~write g = g = Compat.write || ((not write) && g = Compat.read)
let gray_grants ~write g = g = Compat.x || ((not write) && (g = Compat.s || g = Compat.six))

let covers t ~holds oid cls f m =
  let schema = Analysis.schema t.mt_an in
  let write = Mode.equal m Mode.Write in
  match t.mt_vocab with
  | V_tav ->
      List.exists (fun (g, _) -> tav_grants t g f m) (holds (Resource.Instance oid))
      || List.exists
           (fun c -> List.exists (fun (g, h) -> h && tav_grants t g f m) (holds (Resource.Class c)))
           (Schema.linearization schema cls)
  | V_rw ->
      List.exists (fun (g, _) -> rw_grants ~write g) (holds (Resource.Instance oid))
      || List.exists
           (fun c -> List.exists (fun (g, h) -> h && gray_grants ~write g) (holds (Resource.Class c)))
           (Schema.linearization schema cls)
  | V_field -> List.exists (fun (g, _) -> rw_grants ~write g) (holds (Resource.Field (oid, f)))
  | V_relational ->
      let owner =
        match Schema.field_def schema cls f with Some fd -> fd.Schema.f_owner | None -> cls
      in
      List.exists (fun (g, _) -> rw_grants ~write g) (holds (Resource.Fragment (oid, owner)))
      || List.exists (fun (g, h) -> h && gray_grants ~write g) (holds (Resource.Relation owner))

let sites_of t txn =
  match Hashtbl.find_opt t.mt_sites txn with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.mt_sites txn r;
      r

let check t ~txn ~holds oid cls f m ~versioned =
  if not versioned then begin
    t.mt_checked <- t.mt_checked + 1;
    if not (covers t ~holds oid cls f m) then begin
      let site =
        match !(sites_of t txn) with s :: _ -> s | [] -> (cls, MN.of_string "?")
      in
      ignore
        (Tavcc_obs.Ring.push t.mt_ring
           {
             v_txn = txn;
             v_oid = oid;
             v_cls = cls;
             v_field = f;
             v_mode = m;
             v_site = site;
             v_scheme = t.mt_scheme;
           })
    end
  end

let probe t ~txn ~holds =
  let sites = sites_of t txn in
  {
    Tavcc_cc.Exec.null_probe with
    Tavcc_cc.Exec.p_enter =
      (fun _self _cls ~resolve_at:_ ~defining m -> sites := (defining, m) :: !sites);
    p_exit = (fun _ _ _ -> match !sites with [] -> () | _ :: rest -> sites := rest);
    p_read = (fun oid cls f ~versioned -> check t ~txn ~holds oid cls f Mode.Read ~versioned);
    p_write = (fun oid cls f ~versioned -> check t ~txn ~holds oid cls f Mode.Write ~versioned);
  }

let checked t = t.mt_checked
let violations t = Tavcc_obs.Ring.pushed t.mt_ring + Tavcc_obs.Ring.dropped t.mt_ring

let drain t =
  let acc = ref [] in
  ignore (Tavcc_obs.Ring.drain t.mt_ring (fun v -> acc := v :: !acc));
  List.rev !acc

let to_diag t v =
  let ex = Analysis.extraction t.mt_an in
  let dc, dm = v.v_site in
  let pos =
    match Extraction.first_field_pos ex dc dm v.v_field v.v_mode with
    | p -> p
    | exception Invalid_argument _ -> None
  in
  let msg =
    Format.asprintf "%s of %a.%a uncovered by any %s lock"
      (String.lowercase_ascii (Mode.to_string v.v_mode))
      CN.pp v.v_cls FN.pp v.v_field v.v_scheme
  in
  let notes =
    [
      {
        Tavcc_analyze.Diag.n_msg =
          Format.asprintf "witnessed on oid %a by transaction %d" Oid.pp v.v_oid v.v_txn;
        n_pos = None;
      };
    ]
  in
  Tavcc_analyze.Diag.make ?pos ~notes Tavcc_analyze.Diag.San003 v.v_site msg
