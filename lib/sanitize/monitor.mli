(** Runtime lock-coverage monitoring.

    A monitor probe checks, at every field access, that the transaction
    holds a lock {e dominating} the access under the active scheme's
    vocabulary — the dynamic counterpart of the paper's claim that the
    compiled modes make every access safe:

    - [tav], [tav-pre], [mvcc-tav]: some access-mode lock on the instance
      (or a hierarchical class lock along the proper class's
      linearisation) whose {e TAV} grants the field at the access's mode;
    - [rw-msg], [rw-top], [rw-impl]: a read/write instance lock
      ([write] covers [read]), or a hierarchical Gray lock ([s]/[six]
      cover reads, [x] covers writes) on an ancestor class;
    - [field-rt]: a read/write lock on the field itself;
    - [relational]: a read/write lock on the instance's fragment for the
      field's owner class, or a hierarchical Gray lock on that owner's
      relation.

    Accesses with the [versioned] flag (snapshot/optimistic MVCC) are
    exempt: their reads are lock-free by design and their writes acquire
    locks at precommit.

    Violations are pushed into a per-monitor {!Tavcc_obs.Ring}, so with
    one monitor per worker domain the hot path takes no mutex beyond
    whatever the [holds] closure itself takes.  A full ring drops (and
    counts) further violations rather than blocking. *)

open Tavcc_model
open Tavcc_core

type violation = {
  v_txn : int;
  v_oid : Oid.t;
  v_cls : Name.Class.t;  (** proper class of the accessed instance *)
  v_field : Name.Field.t;
  v_mode : Mode.t;  (** [Read] or [Write] *)
  v_site : Site.t;  (** defining site of the method performing the access *)
  v_scheme : string;
}

val pp_violation : Format.formatter -> violation -> unit

type t

val supported : string -> bool
(** Whether the scheme's lock vocabulary is known to the monitor. *)

val create : ?capacity:int -> scheme:string -> Analysis.t -> t
(** [capacity] (default 1024) sizes the violation ring.
    @raise Invalid_argument when [supported scheme] is false. *)

val scheme : t -> string

val probe :
  t -> txn:int -> holds:(Tavcc_lock.Resource.t -> (int * bool) list) -> Tavcc_cc.Exec.probe
(** [holds] answers "which (mode, hier) pairs does [txn] hold on this
    resource right now" — [Lock_table.holds] or [Shard_table.holds]
    partially applied.  Probes fire with the scheme's locks already held
    (see {!Tavcc_cc.Exec.probe}), so a clean run reports nothing. *)

val checked : t -> int
(** Field accesses checked so far (exempted versioned accesses are not
    counted). *)

val violations : t -> int
(** Violations detected so far, including any dropped on ring overflow. *)

val drain : t -> violation list
(** Drains the ring (consumer side), oldest first. *)

val to_diag : t -> violation -> Tavcc_analyze.Diag.t
(** A positioned SAN003 diagnostic: the position is the offending
    statement in the defining site's body, recovered from the
    extraction's provenance tree. *)
